/**
 * @file
 * Cross-module property tests (parameterized sweeps):
 *  - Omega network conservation and routing over random traffic at every
 *    supported width;
 *  - degree samplers hit totals across exponents and caps;
 *  - the cycle engine's functional exactness is insensitive to every
 *    distribution-path knob (queue counts/depths, scan width, inject
 *    width, network speedup/buffers, MAC latency);
 *  - water-filling monotonicity and bounds;
 *  - workload conservation under arbitrary remote-switching sequences;
 *  - randomized CSR/CSC churn mutation: structural invariants and
 *    dense-equality of the DeltaCsr against an incrementally maintained
 *    reference across seeds and insert:delete mixes (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "accel/omega.hpp"
#include "accel/perf_model.hpp"
#include "accel/rebalance.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/delta_csr.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_dist.hpp"
#include "sparse/convert.hpp"
#include "sparse/spmm.hpp"

using namespace awb;

/** Omega: every flit injected under random traffic is delivered exactly
 *  once at its destination, for every width/speedup combination. */
class OmegaConservation
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(OmegaConservation, DeliversEveryFlitOnce)
{
    auto [ports, speedup] = GetParam();
    OmegaNetwork net(ports, 4, speedup);
    Rng rng(static_cast<std::uint64_t>(ports * 131 + speedup));

    const int n = 500;
    std::vector<int> delivered(static_cast<std::size_t>(n), 0);
    int sent = 0;
    Count received = 0;
    int cycles = 0;
    while ((sent < n || !net.empty()) && cycles < 100000) {
        ++cycles;
        net.tick(cycles, [&](const Flit &f, int port) {
            EXPECT_EQ(port, f.destPe);
            ++delivered[static_cast<std::size_t>(f.task.row)];
            ++received;
            return true;
        });
        for (int s = 0; s < ports && sent < n; ++s) {
            int d = rng.nextIndex(ports);
            Flit f{Task{static_cast<Index>(sent), 1.0f, 1.0f, d}, d};
            if (net.inject(f, s)) ++sent;
        }
    }
    EXPECT_EQ(received, n);
    for (int v : delivered) EXPECT_EQ(v, 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, OmegaConservation,
                         ::testing::Combine(::testing::Values(2, 4, 8, 32),
                                            ::testing::Values(1, 2, 4)));

/** Degree sampler: totals hit across exponents and caps. */
class DegreeSweep
    : public ::testing::TestWithParam<std::tuple<double, Count>>
{};

TEST_P(DegreeSweep, TotalWithinTolerance)
{
    auto [alpha, dmax] = GetParam();
    Rng rng(99);
    const Count target = 20000;
    auto deg = samplePowerLawDegrees(rng, 4000, alpha, 1, dmax, target);
    Count total = std::accumulate(deg.begin(), deg.end(), Count(0));
    EXPECT_NEAR(static_cast<double>(total), static_cast<double>(target),
                0.02 * static_cast<double>(target));
    for (Count d : deg) {
        EXPECT_GE(d, 0);
        EXPECT_LE(d, dmax);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Params, DegreeSweep,
    ::testing::Combine(::testing::Values(1.6, 2.1, 2.8),
                       ::testing::Values(Count(50), Count(400))));

/** Engine exactness across every distribution-path knob. */
struct KnobCase
{
    const char *name;
    void (*apply)(AccelConfig &);
};

class EngineKnobs : public ::testing::TestWithParam<int> {};

TEST_P(EngineKnobs, FunctionalUnderAllKnobs)
{
    static const KnobCase cases[] = {
        {"oneQueue", [](AccelConfig &c) { c.numQueuesPerPe = 1; }},
        {"eightQueues", [](AccelConfig &c) { c.numQueuesPerPe = 8; }},
        {"tinyQueues", [](AccelConfig &c) { c.queueDepth = 1; }},
        {"deepMac", [](AccelConfig &c) { c.macLatency = 7; }},
        {"slowScan", [](AccelConfig &c) { c.streamWidth = 3; }},
        {"slowInject", [](AccelConfig &c) { c.injectWidth = 2; }},
        {"slowFabric", [](AccelConfig &c) {
             c.networkSpeedup = 1;
             c.omegaBufferDepth = 1;
         }},
        {"onePort", [](AccelConfig &c) { c.receivePorts = 1; }},
        {"cyclicMap", [](AccelConfig &c) {
             c.mapPolicy = RowMapPolicy::Cyclic;
         }},
    };
    const KnobCase &kc = cases[static_cast<std::size_t>(GetParam())];

    Rng rng(55);
    CooMatrix coo(60, 60);
    for (Index i = 0; i < 60; ++i)
        for (Index j = 0; j < 60; ++j)
            if (rng.nextBool(0.12)) coo.add(i, j, rng.nextFloat(-1, 1));
    coo.canonicalize();
    auto a = CscMatrix::fromCoo(coo);
    DenseMatrix b(60, 5);
    b.fillUniform(rng, -1.0f, 1.0f);
    auto golden = spmmCsc(a, b);

    for (TdqKind kind :
         {TdqKind::Tdq1DenseScan, TdqKind::Tdq2OmegaCsc}) {
        AccelConfig cfg = makeConfig(Design::RemoteD, 8);
        kc.apply(cfg);
        RowPartition part(60, 8, cfg.mapPolicy);
        auto [c, stats] = SpmmEngine(cfg).execute(a, b, kind, part);
        EXPECT_LT(golden.maxAbsDiff(c), 1e-4)
            << kc.name << " kind=" << static_cast<int>(kind);
        EXPECT_EQ(stats.tasks, a.nnz() * 5) << kc.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, EngineKnobs, ::testing::Range(0, 9));

TEST(WaterFill, MonotoneInHops)
{
    Rng rng(77);
    std::vector<Count> w(64);
    for (auto &v : w) v = rng.nextIndex(100);
    Cycle prev = PerfModel::balancedDrain(w, 0);
    for (int h = 1; h <= 8; ++h) {
        Cycle d = PerfModel::balancedDrain(w, h);
        EXPECT_LE(d, prev) << "hops=" << h;
        prev = d;
    }
    // Never below the perfect-balance floor.
    Count total = std::accumulate(w.begin(), w.end(), Count(0));
    EXPECT_GE(prev, (total + 63) / 64);
}

TEST(WaterFill, FullWindowReachesPerfectBalance)
{
    std::vector<Count> w = {100, 0, 0, 0, 0, 0, 0, 0};
    EXPECT_EQ(PerfModel::balancedDrain(w, 7), 13);  // ceil(100/8)
}

TEST(RemoteSwitchProperty, WorkloadConservedUnderAnySequence)
{
    Rng rng(88);
    const Index rows = 200;
    const int pes = 16;
    std::vector<Count> work(static_cast<std::size_t>(rows));
    for (auto &v : work) v = rng.nextIndex(40);
    Count total = std::accumulate(work.begin(), work.end(), Count(0));

    AccelConfig cfg = makeConfig(Design::RemoteC, pes);
    cfg.sharingHops = 0;
    RowPartition part(rows, pes, cfg.mapPolicy);
    RemoteSwitcher sw(cfg, rows);

    for (int round = 0; round < 40; ++round) {
        RoundObservation obs;
        obs.peWork = part.workload(work);
        obs.drainCycle.assign(obs.peWork.begin(), obs.peWork.end());
        sw.observeAndAdjust(obs, work, part);

        ASSERT_TRUE(part.consistent());
        auto pw = part.workload(work);
        EXPECT_EQ(std::accumulate(pw.begin(), pw.end(), Count(0)), total);
    }
}

TEST(RemoteSwitchProperty, NeverIncreasesMaxLoadAfterConvergence)
{
    Rng rng(89);
    const Index rows = 128;
    const int pes = 8;
    std::vector<Count> work(static_cast<std::size_t>(rows), 1);
    for (int i = 0; i < 12; ++i)
        work[static_cast<std::size_t>(rng.nextIndex(rows))] = 30;

    AccelConfig cfg = makeConfig(Design::RemoteC, pes);
    cfg.sharingHops = 0;
    RowPartition part(rows, pes, cfg.mapPolicy);
    RemoteSwitcher sw(cfg, rows);

    auto max_load = [&]() {
        auto pw = part.workload(work);
        return *std::max_element(pw.begin(), pw.end());
    };
    Count initial = max_load();
    for (int round = 0; round < 50 && !sw.converged(); ++round) {
        RoundObservation obs;
        obs.peWork = part.workload(work);
        obs.drainCycle.assign(obs.peWork.begin(), obs.peWork.end());
        sw.observeAndAdjust(obs, work, part);
    }
    EXPECT_LE(max_load(), initial);
}

/**
 * Streaming churn mutation (DESIGN.md §12): drive randomized
 * insert/delete batches through a DeltaCsr and check, after every
 * batch, the invariants a from-scratch build would enjoy — nnz
 * conservation against the accepted-event count, monotone row pointers,
 * sorted in-range column ids, structural validity of both snapshot
 * formats, and element-exact dense equality with an incrementally
 * maintained reference matrix. Parameterized over seeds; the seed is
 * logged so a failure replays deterministically.
 */
class ChurnMutationProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChurnMutationProperty, InvariantsSurviveRandomChurn)
{
    const std::uint64_t seed = GetParam();
    SCOPED_TRACE("churn seed " + std::to_string(seed));

    Rng rng(seed, 0xc0ffee);
    const Index n = 80;
    CooMatrix coo(n, n);
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < n; ++j)
            if (rng.nextBool(0.06)) coo.add(i, j, rng.nextFloat(-1, 1));
    coo.canonicalize();
    const CscMatrix a = CscMatrix::fromCoo(coo);

    dynamic::ChurnParams params;
    params.seed = seed;
    // Sweep the mix with the seed: delete-heavy through insert-heavy.
    params.insertFrac = 0.2 + 0.1 * static_cast<double>(seed % 7);
    dynamic::EdgeChurnStream stream(a, params);
    dynamic::DeltaCsr delta(a);
    DenseMatrix ref = cscToDense(a);

    Count live = a.nnz();
    for (int batch = 0; batch < 10; ++batch) {
        SCOPED_TRACE("batch " + std::to_string(batch));
        const std::vector<dynamic::EdgeEvent> events =
            stream.nextBatch(60);
        for (const dynamic::EdgeEvent &e : events) {
            if (e.op == dynamic::ChurnOp::Insert) {
                ref.at(e.row, e.col) = e.val;
                ++live;
            } else {
                ref.at(e.row, e.col) = Value(0);
                --live;
            }
        }
        ASSERT_EQ(delta.apply(events),
                  static_cast<Count>(events.size()));

        // nnz conservation: accepted inserts minus accepted deletes.
        ASSERT_EQ(delta.nnz(), live);

        const CsrMatrix csr = delta.toCsr();
        ASSERT_TRUE(csr.valid());
        for (Index r = 0; r < csr.rows(); ++r) {
            const Count lo = csr.rowPtr()[static_cast<std::size_t>(r)];
            const Count hi =
                csr.rowPtr()[static_cast<std::size_t>(r) + 1];
            ASSERT_LE(lo, hi);
            for (Count k = lo; k < hi; ++k) {
                const Index c =
                    csr.colId()[static_cast<std::size_t>(k)];
                ASSERT_GE(c, 0);
                ASSERT_LT(c, csr.cols());
                if (k > lo) {
                    // Strictly sorted within the row.
                    ASSERT_LT(
                        csr.colId()[static_cast<std::size_t>(k) - 1],
                        c);
                }
            }
        }

        const CscMatrix csc = delta.toCsc();
        ASSERT_TRUE(csc.valid());
        // Element-exact: values are only ever copied, never recomputed.
        ASSERT_EQ(cscToDense(csc).maxAbsDiff(ref), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnMutationProperty,
                         ::testing::Values(1, 2, 3, 17, 42, 99, 1234));

TEST(ProfileVsDataset, WorkloadTotalsAgreeAcrossScales)
{
    for (double scale : {0.1, 0.3}) {
        auto ds = loadSyntheticByName("citeseer", 21, scale);
        auto prof = loadProfile(findDataset("citeseer"), 21, scale);
        Count ds_nnz = ds.adjacency.nnz();
        Count prof_nnz = std::accumulate(prof.aRowNnz.begin(),
                                         prof.aRowNnz.end(), Count(0));
        EXPECT_NEAR(static_cast<double>(prof_nnz),
                    static_cast<double>(ds_nnz),
                    0.05 * static_cast<double>(ds_nnz))
            << "scale=" << scale;
    }
}
