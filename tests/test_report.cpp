/**
 * @file
 * Tests for the reporting module: heat-map rendering properties and
 * row-map save/load round-trips (the auto-tuned configuration reuse
 * path).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/report.hpp"
#include "common/rng.hpp"

using namespace awb;

TEST(Heatmap, BalancedLoadIsUniformMidRamp)
{
    std::vector<Count> even(32, 100);
    auto s = utilizationHeatmap(even, 32);
    ASSERT_EQ(s.size(), 34u);  // brackets + 32 cells
    char first = s[1];
    for (std::size_t i = 1; i + 1 < s.size(); ++i) EXPECT_EQ(s[i], first);
    // 1.0x mean sits mid-ramp, neither idle nor saturated.
    EXPECT_NE(first, ' ');
    EXPECT_NE(first, '@');
}

TEST(Heatmap, HotspotSaturates)
{
    std::vector<Count> load(16, 10);
    load[7] = 1000;
    auto s = utilizationHeatmap(load, 16);
    EXPECT_EQ(s[8], '@');   // the hotspot cell (offset by '[')
    EXPECT_NE(s[1], '@');
}

TEST(Heatmap, IdlePesRenderBlank)
{
    std::vector<Count> load = {0, 0, 100, 100};
    auto s = utilizationHeatmap(load, 4);
    EXPECT_EQ(s[1], ' ');
    EXPECT_EQ(s[2], ' ');
}

TEST(Heatmap, BucketsDownLongArrays)
{
    std::vector<Count> load(1024, 5);
    auto s = utilizationHeatmap(load, 64);
    EXPECT_EQ(s.size(), 66u);
}

TEST(Heatmap, EmptyInput)
{
    EXPECT_EQ(utilizationHeatmap({}), "");
}

TEST(RowMapPersistence, RoundTripPreservesOwnership)
{
    Rng rng(4);
    RowPartition part(100, 8, RowMapPolicy::Blocked);
    // Scramble it the way remote switching would.
    for (int i = 0; i < 50; ++i)
        part.moveRow(rng.nextIndex(100), static_cast<int>(rng.nextIndex(8)));
    ASSERT_TRUE(part.consistent());

    std::stringstream ss;
    savePartition(ss, part);
    RowPartition back = loadPartition(ss);

    ASSERT_EQ(back.rows(), part.rows());
    ASSERT_EQ(back.numPes(), part.numPes());
    for (Index r = 0; r < 100; ++r)
        EXPECT_EQ(back.owner(r), part.owner(r));
    EXPECT_TRUE(back.consistent());
}

TEST(RowMapPersistence, RejectsBadHeader)
{
    std::stringstream ss;
    ss << "not-a-rowmap 10 4\n";
    EXPECT_DEATH(loadPartition(ss), "");
}

TEST(RowMapPersistence, RejectsTruncated)
{
    RowPartition part(10, 2, RowMapPolicy::Blocked);
    std::stringstream ss;
    savePartition(ss, part);
    std::string text = ss.str();
    std::stringstream cut(text.substr(0, text.size() / 2));
    EXPECT_DEATH(loadPartition(cut), "");
}
