/**
 * @file
 * Multi-chip scale-out tests (DESIGN.md §9): the chips=1 short-circuit
 * is a bit-identical no-op against the chip-less twins for every paper
 * policy on both cycle engines and the round-level model; halo-byte
 * accounting matches a closed-form count on a hand-built adjacency;
 * sharded execution stays functionally exact; and the halo curve is
 * monotone in the chip count.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "accel/chip_partition.hpp"
#include "accel/gcn_accel.hpp"
#include "accel/perf_model.hpp"
#include "accel/policy.hpp"
#include "accel/scaleout.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "driver/sweep.hpp"
#include "gcn/model.hpp"
#include "graph/datasets.hpp"
#include "sparse/coo.hpp"
#include "sparse/spmm.hpp"

using namespace awb;

namespace {

/** The six policies tied to paper figures (Fig. 14 designs + Table 3). */
const std::vector<std::string> kPaperPolicies = {
    "baseline", "local-a", "local-b", "remote-c", "remote-d", "eie-like",
};

void
expectStatsIdentical(const SpmmStats &a, const SpmmStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.idealCycles, b.idealCycles);
    EXPECT_EQ(a.syncCycles, b.syncCycles);
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
    EXPECT_EQ(a.peakNetworkDepth, b.peakNetworkDepth);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.rowsSwitched, b.rowsSwitched);
    EXPECT_EQ(a.convergedRound, b.convergedRound);
    EXPECT_EQ(a.rawStalls, b.rawStalls);
    EXPECT_EQ(a.traffic.total(), b.traffic.total());
    EXPECT_EQ(a.traffic.haloBytes, b.traffic.haloBytes);
    EXPECT_EQ(a.memoryCycles, b.memoryCycles);
    EXPECT_EQ(a.bwBoundRounds, b.bwBoundRounds);
    EXPECT_EQ(a.roundCycles, b.roundCycles);
    EXPECT_EQ(a.perPeTasks, b.perPeTasks);
}

/** Hand-built 4x4 adjacency whose boundary rows are countable by hand:
 *
 *        columns j:   0  1  2  3
 *      row 0:         x     x        (nnz: j=0, j=2)
 *      row 1:            x           (nnz: j=1)
 *      row 2:            x           (nnz: j=1)
 *      row 3:         x        x     (nnz: j=0, j=3)
 *
 * With the baseline blocked split over 2 chips (rows {0,1} on chip 0,
 * {2,3} on chip 1): chip 0 references remote dense row j=2 -> halo 1;
 * chip 1 references remote rows j=0 and j=1 -> halo 2.
 */
CscMatrix
handAdjacency()
{
    CooMatrix coo(4, 4);
    coo.add(0, 0, 1.0f);
    coo.add(0, 2, 2.0f);
    coo.add(1, 1, 3.0f);
    coo.add(2, 1, 4.0f);
    coo.add(3, 0, 5.0f);
    coo.add(3, 3, 6.0f);
    coo.canonicalize();
    return CscMatrix::fromCoo(coo);
}

} // namespace

// ---------------------------------------------------------------- no-op

/** chips=1 must be bit-identical to the chip-less twin: every paper
 *  policy x dataset x engine, whole-GCN cycle runs. */
class ChipsOneNoOp
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, EngineKind>>
{};

TEST_P(ChipsOneNoOp, CycleGcnBitIdentical)
{
    auto [policy, dataset, engine] = GetParam();
    auto ds = loadSyntheticByName(dataset, 11, 0.04);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 11);

    AccelConfig cfg = makePolicyConfig(policy, 16, hopBase(ds.spec));
    cfg.engine = engine;
    cfg.chips = 1;

    GcnRunResult plain = runGcn(cfg, ds, model);
    ShardedGcnResult shard = runGcnSharded(cfg, ds, model);

    EXPECT_EQ(shard.scaleout.chips, 1);
    EXPECT_EQ(shard.scaleout.haloBytes, 0);
    EXPECT_EQ(shard.scaleout.haloCycles, 0);
    EXPECT_EQ(plain.totalCycles, shard.result.totalCycles);
    EXPECT_EQ(plain.totalCyclesSerial, shard.result.totalCyclesSerial);
    EXPECT_EQ(plain.totalTasks, shard.result.totalTasks);
    EXPECT_DOUBLE_EQ(plain.utilization, shard.result.utilization);
    ASSERT_EQ(plain.layers.size(), shard.result.layers.size());
    for (std::size_t l = 0; l < plain.layers.size(); ++l) {
        expectStatsIdentical(plain.layers[l].xw, shard.result.layers[l].xw);
        expectStatsIdentical(plain.layers[l].ax, shard.result.layers[l].ax);
        EXPECT_EQ(plain.layers[l].pipelinedCycles,
                  shard.result.layers[l].pipelinedCycles);
    }
    EXPECT_EQ(0.0, plain.output.maxAbsDiff(shard.result.output));
}

TEST_P(ChipsOneNoOp, PerfModelBitIdentical)
{
    auto [policy, dataset, engine] = GetParam();
    if (engine != EngineKind::Event) GTEST_SKIP();  // engine-independent
    const DatasetSpec &spec = findDataset(dataset);
    auto prof = loadProfile(spec, 11, 0.2);

    AccelConfig cfg = makePolicyConfig(policy, 64, hopBase(spec));
    cfg.platform = "d5005-ddr4";  // exercise the memory model too
    cfg.chips = 1;

    PerfGcnResult plain = PerfModel(cfg).runGcn(prof);
    ShardedPerfGcnResult shard = modelGcnSharded(cfg, prof);

    EXPECT_EQ(shard.scaleout.haloBytes, 0);
    EXPECT_EQ(plain.totalCycles, shard.result.totalCycles);
    EXPECT_EQ(plain.totalTasks, shard.result.totalTasks);
    EXPECT_EQ(plain.traffic.total(), shard.result.traffic.total());
    EXPECT_EQ(plain.memoryCycles, shard.result.memoryCycles);
    EXPECT_EQ(plain.bwBoundRounds, shard.result.bwBoundRounds);
    EXPECT_DOUBLE_EQ(plain.utilization, shard.result.utilization);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPolicies, ChipsOneNoOp,
    ::testing::Combine(::testing::ValuesIn(kPaperPolicies),
                       ::testing::Values("cora", "citeseer", "pubmed"),
                       ::testing::Values(EngineKind::Event,
                                         EngineKind::Batched)),
    [](const auto &info) {
        std::string s = std::get<0>(info.param) + "_" +
                        std::get<1>(info.param) + "_" +
                        engineKindName(std::get<2>(info.param));
        for (auto &c : s)
            if (c == '-') c = '_';
        return s;
    });

// ------------------------------------------------------------ halo math

TEST(ChipPartitionHalo, ClosedFormOnHandBuiltAdjacency)
{
    CscMatrix a = handAdjacency();
    AccelConfig cfg = makePolicyConfig("baseline", 4, 1);
    cfg.chips = 2;

    ChipPartition cp = ChipPartition::build(cfg, a.rows(), a.rowNnz());
    ASSERT_EQ(cp.chips(), 2);
    // Baseline = blocked split: rows {0,1} / {2,3}.
    EXPECT_EQ(cp.chipOf(0), 0);
    EXPECT_EQ(cp.chipOf(1), 0);
    EXPECT_EQ(cp.chipOf(2), 1);
    EXPECT_EQ(cp.chipOf(3), 1);

    // Counted by hand (see handAdjacency's comment).
    std::vector<Count> halo = cp.haloRows(a);
    ASSERT_EQ(halo.size(), 2u);
    EXPECT_EQ(halo[0], 1);
    EXPECT_EQ(halo[1], 2);

    // One element of every halo row crosses the link per streamed
    // column: K columns x (1 + 2) rows x 4 bytes.
    DenseMatrix b(4, 5);
    Rng rng(3);
    b.fillUniform(rng, -1.0f, 1.0f);
    ShardedSpmmResult res =
        executeSpmmSharded(cfg, a, b, TdqKind::Tdq2OmegaCsc);
    EXPECT_EQ(res.scaleout.haloBytes, 5 * 3 * 4);
    EXPECT_EQ(res.result.stats.traffic.haloBytes, 5 * 3 * 4);
    // Unconstrained link (default platform): bytes counted, no floor.
    EXPECT_EQ(res.scaleout.haloCycles, 0);
    EXPECT_EQ(res.scaleout.haloBoundRounds, 0);

    // The sharded run stays functionally exact (same per-row add order).
    EXPECT_EQ(0.0, res.result.c.maxAbsDiff(spmmCsc(a, b)));
}

TEST(ChipPartitionHalo, RectangularOperandHasNoHalo)
{
    // X x W: rectangular sparse operand, W replicated on every chip.
    CooMatrix coo(4, 3);
    coo.add(0, 0, 1.0f);
    coo.add(1, 2, 1.0f);
    coo.add(3, 1, 1.0f);
    coo.canonicalize();
    CscMatrix x = CscMatrix::fromCoo(coo);

    AccelConfig cfg = makePolicyConfig("baseline", 4, 1);
    cfg.chips = 2;
    ChipPartition cp = ChipPartition::build(cfg, x.rows(), x.rowNnz());
    for (Count h : cp.haloRows(x)) EXPECT_EQ(h, 0);
}

TEST(ChipPartitionHalo, SingleChipHasNoHalo)
{
    CscMatrix a = handAdjacency();
    AccelConfig cfg = makePolicyConfig("remote-d", 4, 1);
    cfg.chips = 1;
    ChipPartition cp = ChipPartition::build(cfg, a.rows(), a.rowNnz());
    for (Count h : cp.haloRows(a)) EXPECT_EQ(h, 0);
}

// ------------------------------------------------------- sharded exact

TEST(ShardedSpmm, FunctionallyExactAndConservesTasks)
{
    auto ds = loadSyntheticByName("cora", 5, 0.1);
    const CscMatrix &a = ds.adjacency;
    DenseMatrix b(a.cols(), 7);
    Rng rng(5);
    b.fillUniform(rng, -1.0f, 1.0f);
    DenseMatrix ref = spmmCsc(a, b);

    for (int chips : {2, 3, 4}) {
        AccelConfig cfg = makePolicyConfig("remote-d", 8, 1);
        cfg.chips = chips;
        ShardedSpmmResult res = executeSpmmSharded(cfg, a, b,
                                                   TdqKind::Tdq2OmegaCsc);
        EXPECT_EQ(res.scaleout.chips, chips);
        EXPECT_LE(res.result.c.maxAbsDiff(ref), 1e-5) << chips << " chips";
        EXPECT_EQ(res.result.stats.tasks, a.nnz() * b.cols());
        EXPECT_EQ(res.result.stats.perPeTasks.size(),
                  static_cast<std::size_t>(chips) * 8u);
        EXPECT_GT(res.scaleout.haloBytes, 0);
        EXPECT_GE(res.scaleout.chipImbalance, 1.0);
    }
}

TEST(ShardedSpmm, HaloBytesMonotoneInChipCount)
{
    auto ds = loadSyntheticByName("citeseer", 7, 0.2);
    const CscMatrix &a = ds.adjacency;
    DenseMatrix b(a.cols(), 4);
    Rng rng(7);
    b.fillUniform(rng, -1.0f, 1.0f);

    Count prev = -1;
    for (int chips : {1, 2, 4, 8}) {
        AccelConfig cfg = makePolicyConfig("remote-d", 8, 1);
        cfg.chips = chips;
        ShardedSpmmResult res = executeSpmmSharded(cfg, a, b,
                                                   TdqKind::Tdq2OmegaCsc);
        if (chips == 1) {
            EXPECT_EQ(res.scaleout.haloBytes, 0);
        }
        EXPECT_GE(res.scaleout.haloBytes, prev) << chips << " chips";
        prev = res.scaleout.haloBytes;
    }
}

// -------------------------------------------------------------- sweep

TEST(ScaleoutSweep, ChipsAxisSurfacesInJson)
{
    driver::SweepOptions opts;
    opts.datasets = {"cora"};
    opts.designs = {"remote-d"};
    opts.peCounts = {16};
    opts.modes = {driver::SweepMode::Model};
    opts.chipCounts = {1, 2};
    opts.scale = 0.3;
    opts.threads = 1;

    auto outcomes = driver::runSweep(opts);
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &o : outcomes) EXPECT_TRUE(o.ok) << o.error;
    EXPECT_EQ(outcomes[0].haloBytes, 0);
    EXPECT_GT(outcomes[1].haloBytes, 0);

    std::string json = driver::sweepToJson(opts, outcomes).dump(2);
    for (const char *key :
         {"\"chip_counts\"", "\"chips\"", "\"halo_bytes\"",
          "\"halo_cycles\"", "\"halo_bound_rounds\"",
          "\"chip_imbalance\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}
