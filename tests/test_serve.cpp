/**
 * @file
 * Inference-serving tests (DESIGN.md §10): closed-form latencies on
 * hand-built traces through the real event loop, discipline semantics
 * (fifo / sjf-nnz / dyn-batch), drop/timeout accounting, SLO counting,
 * percentile and depth-trace units, ego extraction, request-generator
 * determinism, the discipline registry's near-miss diagnostics, and the
 * headline guarantee: the same options render byte-identical serving
 * JSON across repeated runs and across sweep thread counts.
 */

#include <gtest/gtest.h>

#include "driver/serve_cli.hpp"
#include "graph/datasets.hpp"
#include "serve/ego.hpp"
#include "serve/queue.hpp"
#include "serve/request_gen.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve.hpp"
#include "serve/service.hpp"
#include "serve/stats.hpp"

using namespace awb;
using namespace awb::serve;

namespace {

Request
traceRequest(std::uint64_t id, Cycle arrival,
             WorkloadKind kind = WorkloadKind::Gcn, Count nnz = 1)
{
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.kind = kind;
    r.nnz = nnz;
    return r;
}

/** Trace-mode options: explicit discipline, no timeout, roomy queue. */
ServeOptions
traceOptions(const std::string &discipline, int devices)
{
    ServeOptions o;
    o.discipline = discipline;
    o.devices = devices;
    o.queueCapacity = 0;
    o.timeoutCycles = 0;
    return o;
}

} // namespace

// ------------------------------------------------------ percentiles

TEST(ServeStats, PercentileIsNearestRank)
{
    // 10..100 in scrambled order; nearest rank = ceil(p/100 * n), 1-based.
    std::vector<Cycle> s = {70, 10, 100, 40, 90, 20, 80, 50, 30, 60};
    EXPECT_EQ(percentile(s, 10), 10);
    EXPECT_EQ(percentile(s, 50), 50);
    EXPECT_EQ(percentile(s, 95), 100);
    EXPECT_EQ(percentile(s, 99.9), 100);
    EXPECT_EQ(percentile(s, 100), 100);
    // Tiny sample: p50 of {100, 190} is the first element.
    EXPECT_EQ(percentile({100, 190}, 50), 100);
    EXPECT_EQ(percentile({100, 190}, 99), 190);
}

TEST(ServeStatsDeath, PercentileRejectsEmptyAndOutOfRange)
{
    EXPECT_DEATH(percentile({}, 50), "empty sample");
    EXPECT_DEATH(percentile({1}, 0.0), "out of \\(0, 100\\]");
    EXPECT_DEATH(percentile({1}, 100.5), "out of \\(0, 100\\]");
}

TEST(ServeStats, SummarizeLatencies)
{
    EXPECT_EQ(summarizeLatencies({}).count, 0);
    EXPECT_EQ(summarizeLatencies({}).p999, 0);

    LatencySummary one = summarizeLatencies({5});
    EXPECT_EQ(one.count, 1);
    EXPECT_EQ(one.p50, 5);
    EXPECT_EQ(one.p999, 5);
    EXPECT_EQ(one.min, 5);
    EXPECT_EQ(one.max, 5);
    EXPECT_DOUBLE_EQ(one.mean, 5.0);

    std::vector<Cycle> s;
    for (Cycle c = 100; c >= 1; --c) s.push_back(c);
    LatencySummary big = summarizeLatencies(s);
    EXPECT_EQ(big.count, 100);
    EXPECT_EQ(big.p50, 50);
    EXPECT_EQ(big.p95, 95);
    EXPECT_EQ(big.p99, 99);
    EXPECT_EQ(big.p999, 100);
    EXPECT_EQ(big.min, 1);
    EXPECT_EQ(big.max, 100);
    EXPECT_DOUBLE_EQ(big.mean, 50.5);
}

TEST(ServeStats, DepthTraceTimeWeightedMean)
{
    DepthTrace t;
    t.record(0, 0);
    t.record(10, 2);
    t.record(20, 1);
    // 10 cycles at 0, 10 at 2, 10 at 1 over [0, 30].
    EXPECT_DOUBLE_EQ(t.meanDepth(30), 1.0);

    // Same-cycle records coalesce to the final depth; repeats of the
    // same depth add no sample.
    DepthTrace c;
    c.record(0, 0);
    c.record(0, 3);
    c.record(0, 1);
    ASSERT_EQ(c.samples().size(), 1u);
    EXPECT_EQ(c.samples()[0].depth, 1u);
    c.record(5, 1);
    EXPECT_EQ(c.samples().size(), 1u);
}

TEST(ServeStatsDeath, DepthTraceRejectsTimeReversal)
{
    DepthTrace t;
    t.record(10, 1);
    EXPECT_DEATH(t.record(9, 2), "time went backwards");
}

// ---------------------------------------------------- request queue

TEST(ServeQueue, AdmitDropExpireAccounting)
{
    RequestQueue q(2);
    EXPECT_TRUE(q.admit(traceRequest(0, 0)));
    EXPECT_TRUE(q.admit(traceRequest(1, 5)));
    EXPECT_FALSE(q.admit(traceRequest(2, 6)));  // full → counted drop
    EXPECT_EQ(q.dropped(), 1);
    EXPECT_EQ(q.admitted(), 2);
    EXPECT_EQ(q.peakDepth(), 2u);

    // Earliest eviction instant: arrival 0 ages out right after 100.
    EXPECT_EQ(q.nextExpiry(100), 101);
    EXPECT_EQ(q.nextExpiry(0), -1);  // timeout disabled

    std::vector<Request> evicted;
    EXPECT_EQ(q.expire(101, 100, &evicted), 1u);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 0u);  // arrival 5 is only 96 old — kept
    EXPECT_EQ(q.timedOut(), 1);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.expire(101, 0), 0u);  // disabled timeout never evicts
}

// ------------------------------------------------ closed-form traces

TEST(ServeTrace, FifoSingleDeviceClosedForm)
{
    // Two requests at cycles 0 and 10, fixed 100-cycle service, one
    // device: latencies are exactly 100 and 190.
    FixedServiceModel svc(100, 0);
    ServeResult r = runServeTrace(
        {traceRequest(0, 0), traceRequest(1, 10)}, svc,
        traceOptions("fifo", 1));

    EXPECT_EQ(r.offered, 2);
    EXPECT_EQ(r.admitted, 2);
    EXPECT_EQ(r.completed, 2);
    EXPECT_EQ(r.dropped, 0);
    EXPECT_EQ(r.timedOut, 0);
    EXPECT_EQ(r.endCycle, 200);
    EXPECT_EQ(r.latency.min, 100);
    EXPECT_EQ(r.latency.max, 190);
    EXPECT_EQ(r.latency.p50, 100);
    EXPECT_EQ(r.latency.p99, 190);
    EXPECT_DOUBLE_EQ(r.latency.mean, 145.0);
    EXPECT_EQ(r.queueWait.min, 0);   // first request never waits
    EXPECT_EQ(r.queueWait.max, 90);  // second waits 100 - 10
    EXPECT_EQ(r.batches, 2);
    EXPECT_DOUBLE_EQ(r.meanBatchSize, 1.0);
    ASSERT_EQ(r.devices.size(), 1u);
    EXPECT_EQ(r.devices[0].busyCycles, 200);
    EXPECT_DOUBLE_EQ(r.devices[0].utilization, 1.0);
    EXPECT_EQ(r.devices[0].requests, 2);
    // Queue depth: 1 over [10, 100), 0 elsewhere in [0, 200].
    EXPECT_DOUBLE_EQ(r.meanQueueDepth, 0.45);
    EXPECT_EQ(r.egoCompleted, 2);
    EXPECT_EQ(r.fullCompleted, 0);
}

TEST(ServeTrace, TwoDevicesServeSimultaneousArrivalsInParallel)
{
    FixedServiceModel svc(100, 0);
    ServeResult r = runServeTrace(
        {traceRequest(0, 0), traceRequest(1, 0)}, svc,
        traceOptions("fifo", 2));
    EXPECT_EQ(r.completed, 2);
    EXPECT_EQ(r.endCycle, 100);
    EXPECT_EQ(r.latency.min, 100);
    EXPECT_EQ(r.latency.max, 100);
    ASSERT_EQ(r.devices.size(), 2u);
    EXPECT_EQ(r.devices[0].requests, 1);
    EXPECT_EQ(r.devices[1].requests, 1);
}

TEST(ServeTrace, SjfServesSmallestNnzFirst)
{
    // Both queued at cycle 0; sjf-nnz must pick the 1-nnz GraphSAGE
    // request before the 5-nnz GCN one (fifo would reverse this).
    FixedServiceModel svc(10, 0);
    ServeResult r = runServeTrace(
        {traceRequest(0, 0, WorkloadKind::Gcn, 5),
         traceRequest(1, 0, WorkloadKind::GraphSage, 1)},
        svc, traceOptions("sjf-nnz", 1));
    const auto &gcn =
        r.kindLatency[static_cast<std::size_t>(WorkloadKind::Gcn)];
    const auto &sage =
        r.kindLatency[static_cast<std::size_t>(WorkloadKind::GraphSage)];
    EXPECT_EQ(sage.max, 10);  // served first
    EXPECT_EQ(gcn.max, 20);   // served second
}

TEST(ServeTrace, DynBatchCoalescesWhenSecondRequestArrives)
{
    // maxBatch 2: the lone front request holds until the second arrives
    // at cycle 10, then both dispatch as one batch costing 100 + 2*10.
    FixedServiceModel svc(100, 10);
    ServeOptions o = traceOptions("dyn-batch", 1);
    o.disciplineParams.maxBatch = 2;
    o.disciplineParams.maxWait = 50;
    ServeResult r = runServeTrace(
        {traceRequest(0, 0), traceRequest(1, 10)}, svc, o);
    EXPECT_EQ(r.completed, 2);
    EXPECT_EQ(r.batches, 1);
    EXPECT_DOUBLE_EQ(r.meanBatchSize, 2.0);
    EXPECT_EQ(r.endCycle, 130);
    EXPECT_EQ(r.latency.max, 130);  // arrival 0, done at 10 + 120
    EXPECT_EQ(r.latency.min, 120);
    EXPECT_EQ(r.queueWait.max, 10);  // front waited for the batch
    EXPECT_EQ(r.queueWait.min, 0);
}

TEST(ServeTrace, DynBatchDeadlineDispatchesUnderfullBatch)
{
    // No second request ever arrives: the front's maxWait deadline
    // fires at cycle 50 and the batch of one dispatches then.
    FixedServiceModel svc(100, 10);
    ServeOptions o = traceOptions("dyn-batch", 1);
    o.disciplineParams.maxBatch = 4;
    o.disciplineParams.maxWait = 50;
    ServeResult r = runServeTrace({traceRequest(0, 0)}, svc, o);
    EXPECT_EQ(r.completed, 1);
    EXPECT_EQ(r.batches, 1);
    EXPECT_EQ(r.queueWait.max, 50);
    EXPECT_EQ(r.latency.max, 160);  // 50 wait + 110 service
    EXPECT_EQ(r.endCycle, 160);
}

TEST(ServeTrace, BoundedQueueDropsWhatItCannotAdmit)
{
    // Capacity 1, 1000-cycle service: the third arrival finds the
    // queue occupied and is dropped; conservation still holds.
    FixedServiceModel svc(1000, 0);
    ServeOptions o = traceOptions("fifo", 1);
    o.queueCapacity = 1;
    ServeResult r = runServeTrace(
        {traceRequest(0, 0), traceRequest(1, 1), traceRequest(2, 2)},
        svc, o);
    EXPECT_EQ(r.offered, 3);
    EXPECT_EQ(r.dropped, 1);
    EXPECT_EQ(r.completed, 2);
    EXPECT_EQ(r.offered, r.completed + r.dropped + r.timedOut);
    EXPECT_EQ(r.endCycle, 2000);
    EXPECT_EQ(r.latency.max, 1999);  // arrival 1 dispatched at 1000
}

TEST(ServeTrace, QueueTimeoutEvictsAgedRequests)
{
    // Device busy for 1000 cycles; the two queued requests age past the
    // 100-cycle deadline and are evicted, never served.
    FixedServiceModel svc(1000, 0);
    ServeOptions o = traceOptions("fifo", 1);
    o.timeoutCycles = 100;
    ServeResult r = runServeTrace(
        {traceRequest(0, 0), traceRequest(1, 1), traceRequest(2, 2)},
        svc, o);
    EXPECT_EQ(r.offered, 3);
    EXPECT_EQ(r.timedOut, 2);
    EXPECT_EQ(r.completed, 1);
    EXPECT_EQ(r.latency.max, 1000);
    EXPECT_EQ(r.offered, r.completed + r.dropped + r.timedOut);
}

TEST(ServeTrace, SloViolationsCountTailAndFailures)
{
    // SLO at exactly 150 cycles: the 190-cycle completion violates it,
    // the 100-cycle one does not.
    FixedServiceModel svc(100, 0);
    ServeOptions o = traceOptions("fifo", 1);
    o.sloMs = 150.0 / (275.0 * 1000.0);  // 150 cycles at 275 MHz
    ServeResult r = runServeTrace(
        {traceRequest(0, 0), traceRequest(1, 10)}, svc, o);
    EXPECT_EQ(r.sloCycles, 150);
    EXPECT_EQ(r.sloViolations, 1);
}

TEST(ServeTrace, ZeroCostServiceIsClampedToOneCycle)
{
    FixedServiceModel svc(0, 0);
    ServeResult r =
        runServeTrace({traceRequest(0, 0)}, svc, traceOptions("fifo", 1));
    EXPECT_EQ(r.completed, 1);
    EXPECT_EQ(r.latency.max, 1);
    EXPECT_EQ(r.endCycle, 1);
}

// ------------------------------------------------- ego extraction

TEST(ServeEgo, KhopNodeSetsAreSortedCappedAndNested)
{
    Dataset ds = loadSyntheticByName("cora", 1, 0.1);
    const CscMatrix &a = ds.adjacency;
    const Index seed = 3;

    std::vector<Index> one = egoNodes(a, seed, 1, 1 << 20);
    std::vector<Index> two = egoNodes(a, seed, 2, 1 << 20);
    EXPECT_TRUE(std::is_sorted(one.begin(), one.end()));
    EXPECT_TRUE(std::binary_search(one.begin(), one.end(), seed));
    EXPECT_GE(two.size(), one.size());
    for (Index n : one)  // 1-hop ⊆ 2-hop
        EXPECT_TRUE(std::binary_search(two.begin(), two.end(), n));

    std::vector<Index> capped = egoNodes(a, seed, 3, 4);
    EXPECT_LE(capped.size(), 4u);
    EXPECT_FALSE(capped.empty());
}

TEST(ServeEgo, InducedSubgraphOverAllNodesIsTheWholeGraph)
{
    Dataset ds = loadSyntheticByName("cora", 1, 0.05);
    const CscMatrix &a = ds.adjacency;
    std::vector<Index> all(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<Index>(i);
    CscMatrix sub = inducedSubgraph(a, all);
    EXPECT_EQ(sub.rows(), a.rows());
    EXPECT_EQ(sub.nnz(), a.nnz());

    std::vector<Index> nodes = egoNodes(a, 0, 2, 64);
    CscMatrix ego = inducedSubgraph(a, nodes);
    EXPECT_EQ(ego.rows(), static_cast<Index>(nodes.size()));
    EXPECT_LE(ego.nnz(), a.nnz());

    CsrMatrix x = selectRows(ds.features, nodes);
    EXPECT_EQ(x.rows(), static_cast<Index>(nodes.size()));
    EXPECT_EQ(x.cols(), ds.features.cols());
}

// --------------------------------------------- request generation

TEST(ServeGen, SameSeedSameStreamDifferentSeedDiverges)
{
    Dataset ds = loadSyntheticByName("cora", 1, 0.1);
    RequestMix mix;
    RequestGenerator a(ds, mix, 42);
    RequestGenerator b(ds, mix, 42);
    RequestGenerator c(ds, mix, 43);

    bool diverged = false;
    for (int i = 0; i < 32; ++i) {
        Request ra = a.next();
        Request rb = b.next();
        Request rc = c.next();
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.kind, rb.kind);
        EXPECT_EQ(ra.scope, rb.scope);
        EXPECT_EQ(ra.seedNode, rb.seedNode);
        EXPECT_EQ(ra.nnz, rb.nnz);
        EXPECT_EQ(ra.nodes, rb.nodes);
        EXPECT_EQ(a.nextArrivalGap(1000.0), b.nextArrivalGap(1000.0));
        if (rc.seedNode != ra.seedNode || rc.kind != ra.kind)
            diverged = true;
    }
    EXPECT_TRUE(diverged);
    EXPECT_EQ(a.issued(), 32u);
}

TEST(ServeGen, EgoRequestsCarryTheirInducedProfile)
{
    Dataset ds = loadSyntheticByName("cora", 1, 0.1);
    RequestMix mix;
    mix.egoFraction = 1.0;
    RequestGenerator gen(ds, mix, 7);
    for (int i = 0; i < 16; ++i) {
        Request r = gen.next();
        ASSERT_EQ(r.scope, RequestScope::Ego);
        EXPECT_FALSE(r.nodes.empty());
        EXPECT_EQ(r.aRowNnz.size(), r.nodes.size());
        EXPECT_EQ(r.xRowNnz.size(), r.nodes.size());
        Count sum = 0;
        for (Count c : r.aRowNnz) sum += c;
        EXPECT_EQ(sum, r.nnz);
    }
}

TEST(ServeGenDeath, MixValidationIsFatal)
{
    Dataset ds = loadSyntheticByName("cora", 1, 0.05);
    RequestMix bad_weights;
    bad_weights.gcn = bad_weights.graphsage = bad_weights.gin = 0.0;
    EXPECT_EXIT(RequestGenerator(ds, bad_weights, 1),
                ::testing::ExitedWithCode(1), "sum > 0");
    RequestMix bad_frac;
    bad_frac.egoFraction = 1.5;
    EXPECT_EXIT(RequestGenerator(ds, bad_frac, 1),
                ::testing::ExitedWithCode(1), "egoFraction");
}

// ------------------------------------------------- registry errors

TEST(ServeRegistryDeath, UnknownDisciplineSuggestsNearMiss)
{
    EXPECT_EXIT(DisciplineRegistry::instance().get("fifoo"),
                ::testing::ExitedWithCode(1), "did you mean 'fifo'");
    EXPECT_EXIT(makeDiscipline("dyn-batc", {}),
                ::testing::ExitedWithCode(1), "did you mean 'dyn-batch'");
}

TEST(ServeRegistryDeath, DuplicateDisciplineIsRejected)
{
    EXPECT_EXIT(DisciplineRegistry::instance().add(
                    {"fifo", "dup", nullptr}),
                ::testing::ExitedWithCode(1),
                "duplicate batch discipline 'fifo'");
}

TEST(ServeRegistry, BuiltinsAreRegistered)
{
    const auto all = DisciplineRegistry::instance().all();
    ASSERT_GE(all.size(), 3u);
    EXPECT_EQ(all[0]->name, "fifo");
    EXPECT_NE(DisciplineRegistry::instance().find("sjf-nnz"), nullptr);
    EXPECT_NE(DisciplineRegistry::instance().find("dyn-batch"), nullptr);
    EXPECT_EQ(DisciplineRegistry::instance().find("lifo"), nullptr);
}

TEST(ServeOptionsDeath, EnumParsersRejectUnknownNames)
{
    EXPECT_EXIT(parseServeFidelity("cycle-ish"),
                ::testing::ExitedWithCode(1), "unknown serving fidelity");
    EXPECT_EXIT(parseArrivalMode("poisson"),
                ::testing::ExitedWithCode(1), "unknown arrival mode");
    EXPECT_EQ(parseServeFidelity("model"), ServeFidelity::Model);
    EXPECT_EQ(parseServeFidelity("cycle"), ServeFidelity::Cycle);
    EXPECT_EQ(parseArrivalMode("open"), ArrivalMode::Open);
    EXPECT_EQ(parseArrivalMode("closed"), ArrivalMode::Closed);
}

TEST(ServeOptionsDeath, ClosedLoopCapacityBelowClientsIsFatal)
{
    ServeOptions o;
    o.arrivals = ArrivalMode::Closed;
    o.clients = 8;
    o.queueCapacity = 4;
    o.durationMs = 0.1;
    EXPECT_EXIT(runServe(o), ::testing::ExitedWithCode(1),
                "starve clients");
}

// ------------------------------------------------- end-to-end runs

TEST(ServeDeterminism, ModelFidelityJsonIsByteIdentical)
{
    ServeOptions o;
    o.dataset = "cora";
    o.ratePerSec = 50000.0;
    o.durationMs = 1.0;
    o.devices = 2;
    o.discipline = "dyn-batch";
    ServeResult a = runServe(o);
    ServeResult b = runServe(o);
    EXPECT_EQ(driver::serveToJson(o, a).dump(2),
              driver::serveToJson(o, b).dump(2));
    EXPECT_GT(a.completed, 0);
    EXPECT_EQ(a.offered, a.completed + a.dropped + a.timedOut);
}

TEST(ServeDeterminism, CycleFidelityJsonIsByteIdentical)
{
    ServeOptions o;
    o.dataset = "cora";
    o.fidelity = ServeFidelity::Cycle;
    o.scale = 0.2;
    o.ratePerSec = 20000.0;
    o.durationMs = 5.0;
    o.requestCap = 4;
    ServeResult a = runServe(o);
    ServeResult b = runServe(o);
    EXPECT_EQ(driver::serveToJson(o, a).dump(2),
              driver::serveToJson(o, b).dump(2));
    EXPECT_GT(a.completed, 0);
}

TEST(ServeDeterminism, ClosedLoopConservesRequests)
{
    ServeOptions o;
    o.dataset = "cora";
    o.arrivals = ArrivalMode::Closed;
    o.clients = 4;
    o.durationMs = 0.5;
    ServeResult r = runServe(o);
    EXPECT_GT(r.completed, 0);
    EXPECT_EQ(r.offered, r.completed + r.dropped + r.timedOut);
    // Every completion belongs to one of the fixed clients.
    EXPECT_EQ(r.dropped, 0);  // capacity 1024 >= 4 clients
}

TEST(ServeSweep, ThreadCountCannotChangeTheBytes)
{
    driver::ServeSweepOptions o;
    o.base.dataset = "cora";
    o.base.durationMs = 0.5;
    o.rates = {20000.0, 40000.0};
    o.disciplines = {"fifo", "dyn-batch"};
    o.deviceCounts = {1, 2};
    o.threads = 1;
    auto serial = driver::runServeSweep(o);
    o.threads = 8;
    auto wide = driver::runServeSweep(o);
    ASSERT_EQ(serial.size(), wide.size());
    ASSERT_EQ(serial.size(), 8u);  // 2 rates × 2 disciplines × 2 devices
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(
            driver::serveToJson(serial[i].opts, serial[i].result).dump(2),
            driver::serveToJson(wide[i].opts, wide[i].result).dump(2))
            << "grid point " << i;
}
