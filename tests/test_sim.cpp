/**
 * @file
 * Tests for the simulation kernel (FIFO, engine) and the Omega network:
 * full src/dest delivery coverage, in-order per-path delivery, contention
 * backpressure, and buffer-occupancy accounting.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "accel/omega.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"

using namespace awb;

TEST(Fifo, FifoOrder)
{
    Fifo<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(Fifo, CapacityEnforced)
{
    Fifo<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3));
    q.pop();
    EXPECT_TRUE(q.push(3));
}

TEST(Fifo, UnboundedTracksPeak)
{
    Fifo<int> q;  // capacity 0 == unbounded
    for (int i = 0; i < 100; ++i) q.push(i);
    for (int i = 0; i < 60; ++i) q.pop();
    for (int i = 0; i < 10; ++i) q.push(i);
    EXPECT_EQ(q.peakOccupancy(), 100u);
    EXPECT_EQ(q.totalPushes(), 110);
}

namespace {

/** Component that counts down and goes quiescent. */
class Countdown : public Component
{
  public:
    explicit Countdown(int n) : Component("countdown"), left_(n) {}
    void tick(Cycle) override { if (left_ > 0) --left_; }
    bool quiescent() const override { return left_ == 0; }

  private:
    int left_;
};

} // namespace

TEST(Engine, RunsUntilQuiescent)
{
    Engine e;
    Countdown c(10);
    e.add(&c);
    EXPECT_EQ(e.run(1000), 10);
}

TEST(Engine, RespectsMaxCycles)
{
    Engine e;
    Countdown c(100);
    e.add(&c);
    EXPECT_EQ(e.run(7), 7);
}

namespace {

/** Drain everything currently in the network into `out`. */
void
drainAll(OmegaNetwork &net, std::vector<Flit> &out, int max_cycles = 1000)
{
    int cycles = 0;
    while (!net.empty() && cycles++ < max_cycles) {
        net.tick(cycles, [&](const Flit &f, int port) {
            EXPECT_EQ(port, f.destPe);
            out.push_back(f);
            return true;
        });
    }
}

} // namespace

TEST(Omega, AllSrcDestPairsRoute)
{
    // Routing invariant: every (src, dest) pair must end at dest.
    for (int ports : {2, 4, 8, 16}) {
        OmegaNetwork net(ports, 4);
        for (int s = 0; s < ports; ++s) {
            for (int d = 0; d < ports; ++d) {
                Flit f{Task{static_cast<Index>(d), 1.0f, 1.0f, d}, d};
                ASSERT_TRUE(net.inject(f, s));
                std::vector<Flit> out;
                drainAll(net, out);
                ASSERT_EQ(out.size(), 1u) << "ports=" << ports
                                          << " s=" << s << " d=" << d;
                EXPECT_EQ(out[0].destPe, d);
            }
        }
    }
}

TEST(Omega, DeliveryLatencyIsStageCount)
{
    OmegaNetwork net(8, 4);  // 3 stages
    Flit f{Task{0, 1.0f, 1.0f, 5}, 5};
    ASSERT_TRUE(net.inject(f, 0));
    int cycles = 0;
    bool delivered = false;
    while (!delivered && cycles < 100) {
        ++cycles;
        net.tick(cycles, [&](const Flit &, int) {
            delivered = true;
            return true;
        });
    }
    EXPECT_EQ(cycles, 3);
}

TEST(Omega, ContentionSerializesSameDestination)
{
    // P flits all to PE 0: the final output port delivers 1 per cycle, so
    // draining takes at least P cycles.
    const int P = 8;
    OmegaNetwork net(P, 8, /*speedup=*/1);
    for (int s = 0; s < P; ++s) {
        Flit f{Task{0, 1.0f, 1.0f, 0}, 0};
        ASSERT_TRUE(net.inject(f, s));
    }
    std::vector<Flit> out;
    int cycles = 0;
    while (!net.empty() && cycles < 1000) {
        ++cycles;
        net.tick(cycles, [&](const Flit &f, int) {
            out.push_back(f);
            return true;
        });
    }
    EXPECT_EQ(out.size(), 8u);
    EXPECT_GE(cycles, 8);
    EXPECT_GT(net.blockedMoves(), 0);
}

TEST(Omega, BackpressureWhenSinkRejects)
{
    OmegaNetwork net(4, 2);
    Flit f{Task{2, 1.0f, 1.0f, 2}, 2};
    ASSERT_TRUE(net.inject(f, 0));
    // Sink always rejects: flit must stay in the fabric.
    for (int i = 0; i < 10; ++i)
        net.tick(i, [](const Flit &, int) { return false; });
    EXPECT_FALSE(net.empty());
    // Now accept.
    std::vector<Flit> out;
    drainAll(net, out);
    ASSERT_EQ(out.size(), 1u);
}

TEST(Omega, EntryBufferFillsUnderInjectionPressure)
{
    OmegaNetwork net(4, 1);
    Flit f{Task{1, 1.0f, 1.0f, 1}, 1};
    EXPECT_TRUE(net.inject(f, 0));
    // Same entry path, buffer depth 1 -> second inject fails.
    EXPECT_FALSE(net.inject(f, 0));
}

TEST(Omega, ThroughputUnderUniformTraffic)
{
    // With uniformly spread destinations the network should sustain close
    // to 1 flit/port/cycle; 256 flits over 8 ports in well under 96
    // cycles.
    const int P = 8;
    OmegaNetwork net(P, 4);
    int sent = 0, received = 0, cycles = 0;
    while (received < 256 && cycles < 500) {
        ++cycles;
        net.tick(cycles, [&](const Flit &, int) {
            ++received;
            return true;
        });
        for (int s = 0; s < P && sent < 256; ++s) {
            Flit f{Task{static_cast<Index>(sent % P), 1.0f, 1.0f,
                        sent % P},
                   sent % P};
            if (net.inject(f, s)) ++sent;
        }
    }
    EXPECT_EQ(received, 256);
    EXPECT_LT(cycles, 96);
    EXPECT_GE(net.peakBufferDepth(), 1u);
}
