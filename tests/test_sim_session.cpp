/**
 * @file
 * Session executor tests: bit-for-bit equivalence against the original
 * hand-rolled pre-Session orchestration (re-implemented here as the
 * golden reference) on Cora and Citeseer for all six designs, functional
 * exactness of the GraphSAGE/GIN/k-hop factories against the dense
 * reference interpreter, automatic row-map carrying, StatsSink delivery,
 * and pipelineCyclesMulti edge cases.
 */

#include <gtest/gtest.h>

#include "accel/gcn_accel.hpp"
#include "accel/spmm_engine.hpp"
#include "gcn/model.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"
#include "sim/factories.hpp"
#include "sim/session.hpp"
#include "sparse/convert.hpp"

using namespace awb;

namespace {

/**
 * The pre-Session hand-rolled GCN orchestration, verbatim (manual
 * per-layer partitions, hand-carried adjacency map, explicit pipeline
 * combination). The Session must reproduce its numbers bit for bit.
 */
GcnRunResult
legacyReferenceRun(const AccelConfig &cfg, const Dataset &ds,
                   const GcnModel &model)
{
    const Index n = ds.adjacency.rows();
    GcnRunResult res;
    RowPartition part_a(n, cfg.numPes, cfg.mapPolicy);
    CscMatrix x_csc = csrToCsc(ds.features);
    SpmmEngine engine(cfg);

    for (Index l = 0; l < model.layers(); ++l) {
        const DenseMatrix &w = model.weights[static_cast<std::size_t>(l)];
        GcnLayerResult layer;

        RowPartition part_x(n, cfg.numPes, cfg.mapPolicy);
        SpmmResult xw =
            engine.execute(x_csc, w, TdqKind::Tdq1DenseScan, part_x);
        layer.xw = std::move(xw.stats);

        SpmmResult ax = engine.execute(ds.adjacency, xw.c,
                                       TdqKind::Tdq2OmegaCsc, part_a);
        layer.ax = std::move(ax.stats);
        DenseMatrix z = std::move(ax.c);

        for (Index h = 1; h < model.adjHops; ++h) {
            SpmmResult hop = engine.execute(ds.adjacency, z,
                                            TdqKind::Tdq2OmegaCsc, part_a);
            z = std::move(hop.c);
            layer.extraHops.push_back(std::move(hop.stats));
        }

        std::vector<const std::vector<Cycle> *> stages = {
            &layer.xw.roundCycles, &layer.ax.roundCycles};
        for (const auto &hop : layer.extraHops)
            stages.push_back(&hop.roundCycles);
        layer.pipelinedCycles = pipelineCyclesMulti(stages);
        res.totalCycles += layer.pipelinedCycles;
        res.totalCyclesSerial += layer.xw.cycles + layer.ax.cycles;
        res.totalTasks += layer.xw.tasks + layer.ax.tasks;
        for (const auto &hop : layer.extraHops) {
            res.totalCyclesSerial += hop.cycles;
            res.totalTasks += hop.tasks;
        }
        res.layers.push_back(std::move(layer));

        bool last = (l == model.layers() - 1);
        if (!last) {
            z.relu();
            x_csc = denseToCsc(z);
        } else {
            res.output = std::move(z);
        }
    }

    res.utilization = res.totalCyclesSerial > 0
        ? static_cast<double>(res.totalTasks) /
          (static_cast<double>(cfg.numPes) *
           static_cast<double>(res.totalCyclesSerial))
        : 0.0;
    return res;
}

} // namespace

/** Session vs legacy orchestration on Cora and Citeseer, all six designs. */
class SessionVsLegacy
    : public ::testing::TestWithParam<std::tuple<const char *, Design>>
{};

TEST_P(SessionVsLegacy, BitIdenticalCyclesAndUtilization)
{
    auto [name, design] = GetParam();
    auto ds = loadSyntheticByName(name, 31, 0.04);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 31);
    model.adjHops = 2;  // exercise the multi-hop chain too

    AccelConfig cfg = makeConfig(design, 16);
    GcnRunResult legacy = legacyReferenceRun(cfg, ds, model);
    GcnRunResult session = runGcn(cfg, ds, model);

    EXPECT_EQ(session.totalCycles, legacy.totalCycles);
    EXPECT_EQ(session.totalCyclesSerial, legacy.totalCyclesSerial);
    EXPECT_EQ(session.totalTasks, legacy.totalTasks);
    EXPECT_EQ(session.utilization, legacy.utilization);  // same bits
    EXPECT_EQ(session.output.maxAbsDiff(legacy.output), 0.0);

    ASSERT_EQ(session.layers.size(), legacy.layers.size());
    for (std::size_t l = 0; l < legacy.layers.size(); ++l) {
        EXPECT_EQ(session.layers[l].pipelinedCycles,
                  legacy.layers[l].pipelinedCycles);
        EXPECT_EQ(session.layers[l].xw.cycles, legacy.layers[l].xw.cycles);
        EXPECT_EQ(session.layers[l].ax.cycles, legacy.layers[l].ax.cycles);
        EXPECT_EQ(session.layers[l].ax.rowsSwitched,
                  legacy.layers[l].ax.rowsSwitched);
        ASSERT_EQ(session.layers[l].extraHops.size(),
                  legacy.layers[l].extraHops.size());
        for (std::size_t h = 0; h < legacy.layers[l].extraHops.size(); ++h)
            EXPECT_EQ(session.layers[l].extraHops[h].cycles,
                      legacy.layers[l].extraHops[h].cycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CoraCiteseerAllDesigns, SessionVsLegacy,
    ::testing::Combine(::testing::Values("cora", "citeseer"),
                       ::testing::Values(Design::Baseline, Design::LocalA,
                                         Design::LocalB, Design::RemoteC,
                                         Design::RemoteD,
                                         Design::EieLike)));

TEST(PipelineMultiEdge, EmptyStageListIsZero)
{
    EXPECT_EQ(pipelineCyclesMulti({}), 0);
}

TEST(PipelineMultiEdge, ZeroRoundStagesAreZero)
{
    std::vector<Cycle> empty;
    EXPECT_EQ(pipelineCyclesMulti({&empty, &empty}), 0);
}

TEST(PipelineMultiEdge, SingleColumnIsSerialSum)
{
    // With one column there is nothing to overlap: every stage waits for
    // its predecessor, so the delay is the plain sum.
    std::vector<Cycle> s1 = {7};
    std::vector<Cycle> s2 = {11};
    std::vector<Cycle> s3 = {2};
    EXPECT_EQ(pipelineCyclesMulti({&s1, &s2, &s3}), 20);
}

TEST(PipelineMultiEdgeDeath, UnequalRoundCountsPanic)
{
    std::vector<Cycle> s1 = {1, 2, 3};
    std::vector<Cycle> s2 = {1, 2};
    EXPECT_DEATH(pipelineCyclesMulti({&s1, &s2}), "round counts differ");
}

/** Each factory's cycle-accurate output must match the dense reference. */
class FactoryFunctional : public ::testing::TestWithParam<const char *>
{};

TEST_P(FactoryFunctional, ExactAgainstDenseReference)
{
    std::string which = GetParam();
    auto ds = loadSyntheticByName("cora", 33, 0.05);
    GcnModel model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 33);

    sim::WorkloadBundle bundle;
    if (which == "graphsage-mean")
        bundle = sim::buildGraphSage(ds, ds.spec.f2, ds.spec.f3, true, 33);
    else if (which == "graphsage-concat")
        bundle = sim::buildGraphSage(ds, ds.spec.f2, ds.spec.f3, false, 33);
    else if (which == "gin")
        bundle = sim::buildGin(ds, ds.spec.f2, ds.spec.f3, 0.1, 33);
    else
        bundle = sim::buildMultiHopGcn(ds, model, 3);

    sim::Session session(makeConfig(Design::RemoteD, 16));
    sim::SessionResult res = sim::runWorkload(session, bundle);
    DenseMatrix golden = sim::referenceEval(bundle);

    ASSERT_TRUE(res.output.sameShape(golden));
    EXPECT_LT(res.output.maxAbsDiff(golden), 1e-3);
    EXPECT_GT(res.totalTasks, 0);
    EXPECT_LE(res.totalCycles, res.totalCyclesSerial);
}

INSTANTIATE_TEST_SUITE_P(Zoo, FactoryFunctional,
                         ::testing::Values("graphsage-mean",
                                           "graphsage-concat", "gin",
                                           "khop"));

TEST(Session, GcnMatchesGoldenInference)
{
    auto ds = loadSyntheticByName("citeseer", 34, 0.04);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 34);
    auto golden = inferGcn(ds, model);

    sim::Session session(makeConfig(Design::RemoteD, 16));
    auto res = sim::runWorkload(session, sim::buildGcn(ds, model));
    EXPECT_LT(res.output.maxAbsDiff(golden.output), 1e-3);
}

TEST(Session, CarriesRowMapPerSparseOperand)
{
    auto ds = loadSyntheticByName("nell", 35, 0.03);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 35);
    sim::WorkloadBundle bundle = sim::buildGcn(ds, model);

    sim::Session session(makeConfig(Design::RemoteD, 16, 2));
    EXPECT_EQ(session.rowMap("A"), nullptr);
    sim::SessionResult first = sim::runWorkload(session, bundle);
    ASSERT_NE(session.rowMap("A"), nullptr);
    EXPECT_TRUE(session.rowMap("A")->consistent());

    // The adjacency map tuned in layer 1 is carried into layer 2: layer
    // 2's first A-round must not be slower than layer 1's untuned start.
    const SpmmStats &l1_ax = first.nodeStats[1];
    const SpmmStats &l2_ax = first.nodeStats[3];
    ASSERT_FALSE(l1_ax.roundCycles.empty());
    ASSERT_FALSE(l2_ax.roundCycles.empty());
    EXPECT_LE(l2_ax.roundCycles.front(),
              l1_ax.roundCycles.front() + l1_ax.roundCycles.front() / 10);

    // And it persists across run() calls: rebinding the same operand
    // structure (runWorkload on the same bundle) keeps the tuned map, so
    // a second inference's layer-1 A-SPMM needs no further switching.
    sim::SessionResult second = sim::runWorkload(session, bundle);
    EXPECT_LE(second.nodeStats[1].rowsSwitched,
              first.nodeStats[1].rowsSwitched);
    EXPECT_LE(second.nodeStats[1].roundCycles.front(),
              first.nodeStats[1].roundCycles.front());
}

TEST(Session, DenseBoundLeftOperandWorks)
{
    // A dense-bound tensor consumed as the left (zero-skipped, scanned)
    // operand of a DenseMm: the Session sparsifies it on the fly.
    Rng rng(40);
    DenseMatrix x(24, 12), w(12, 6);
    x.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -1.0f, 1.0f);

    sim::WorkloadBuilder b;
    auto c = b.denseMm(b.input("X"), b.input("W"));
    sim::WorkloadGraph g = b.build(c);

    sim::Session session(makeConfig(Design::LocalA, 8));
    session.bindDense("X", x);
    session.bindDense("W", w);
    sim::SessionResult res = session.run(g);
    EXPECT_LT(res.output.maxAbsDiff(multiply(x, w)), 1e-4);
}

TEST(Session, ProducedTensorRowMapsArePerRun)
{
    // Two graphs of different sizes share auto-generated intermediate
    // names; their per-run row maps must not collide across run() calls.
    auto dsA = loadSyntheticByName("cora", 41, 0.04);
    auto dsB = loadSyntheticByName("cora", 41, 0.02);
    ASSERT_NE(dsA.spec.nodes, dsB.spec.nodes);
    auto sageA = sim::buildGraphSage(dsA, 8, 4, true, 41);
    auto sageB = sim::buildGraphSage(dsB, 8, 4, true, 41);

    sim::Session session(makeConfig(Design::RemoteD, 8));
    sim::SessionResult a = sim::runWorkload(session, sageA);
    sim::SessionResult b = sim::runWorkload(session, sageB);
    EXPECT_LT(a.output.maxAbsDiff(sim::referenceEval(sageA)), 1e-3);
    EXPECT_LT(b.output.maxAbsDiff(sim::referenceEval(sageB)), 1e-3);
}

TEST(Session, StatsSinkSeesEveryCostedNodeAndChain)
{
    auto ds = loadSyntheticByName("cora", 36, 0.04);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 36);

    sim::Session session(makeConfig(Design::LocalA, 16));
    sim::CollectingSink sink;
    auto res = sim::runWorkload(session, sim::buildGcn(ds, model), &sink);

    // 2 layers x (XW + A(XW)) costed nodes, one chain per layer.
    ASSERT_EQ(sink.stats.size(), 4u);
    EXPECT_EQ(sink.nodes[0].label, "L1.XW");
    EXPECT_EQ(sink.stats[1].label, "L1.A(XW)");
    ASSERT_EQ(sink.chains.size(), 2u);
    EXPECT_EQ(sink.chains[0].stages.size(), 2u);
    EXPECT_EQ(sink.runs, 1);
    EXPECT_EQ(res.nodeStats.size(), 4u);
    // Chain pipelining can only help, never hurt.
    for (const auto &chain : res.chains)
        EXPECT_LE(chain.pipelinedCycles, chain.serialCycles);
}

TEST(SessionDeath, UnboundTensorIsDescriptive)
{
    sim::WorkloadBuilder b;
    auto c = b.spmm(b.input("A"), b.input("B"), TdqKind::Tdq2OmegaCsc);
    sim::WorkloadGraph g = b.build(c);
    sim::Session session(makeConfig(Design::Baseline, 4));
    EXPECT_EXIT(session.run(g), ::testing::ExitedWithCode(1),
                "not bound");
}

TEST(SessionDeath, InvalidConfigIsDescriptive)
{
    AccelConfig cfg = makeConfig(Design::Baseline, 8);
    cfg.maxCyclesPerRound = 0;
    EXPECT_EXIT(sim::Session{cfg}, ::testing::ExitedWithCode(1),
                "maxCyclesPerRound");
}

TEST(Engine, RepeatedExecuteFromFreshPartitionsIsDeterministic)
{
    // The shim-era equivalence test lived here; the out-param shims are
    // gone (see CHANGES.md migration notes), so what remains to pin down
    // is that execute() from identical fresh partitions reproduces
    // identical stats and values.
    auto ds = loadSyntheticByName("cora", 37, 0.04);
    AccelConfig cfg = makeConfig(Design::RemoteC, 16);

    Rng rng(37);
    DenseMatrix b(ds.spec.nodes, 5);
    b.fillUniform(rng, -1.0f, 1.0f);
    RowPartition part_one(ds.spec.nodes, 16, cfg.mapPolicy);
    RowPartition part_two(ds.spec.nodes, 16, cfg.mapPolicy);
    SpmmEngine engine(cfg);
    SpmmResult one =
        engine.execute(ds.adjacency, b, TdqKind::Tdq2OmegaCsc, part_one);
    SpmmResult two =
        engine.execute(ds.adjacency, b, TdqKind::Tdq2OmegaCsc, part_two);

    EXPECT_EQ(one.stats.cycles, two.stats.cycles);
    EXPECT_EQ(one.stats.rowsSwitched, two.stats.rowsSwitched);
    EXPECT_EQ(one.c.maxAbsDiff(two.c), 0.0);
}
