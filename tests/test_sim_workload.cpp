/**
 * @file
 * Unit tests for the workload-graph IR: builder composition, structural
 * validation (descriptive errors, not asserts), deterministic topological
 * scheduling of arbitrarily ordered node lists, the dense reference
 * interpreter's operator semantics, and AccelConfig::validate.
 */

#include <gtest/gtest.h>

#include "accel/config.hpp"
#include "sim/factories.hpp"
#include "sim/workload.hpp"

using namespace awb;
using namespace awb::sim;

TEST(WorkloadBuilder, ComposesAndAutoNames)
{
    WorkloadBuilder b;
    auto x = b.input("X");
    auto w = b.input("W");
    auto a = b.input("A");
    auto xw = b.spmm(x, w, TdqKind::Tdq1DenseScan, "L1.XW");
    auto z = b.spmm(a, xw, TdqKind::Tdq2OmegaCsc);
    auto h = b.relu(z, "H1");
    WorkloadGraph g = b.build(h);

    ASSERT_EQ(g.nodes().size(), 3u);
    EXPECT_EQ(g.inputs().size(), 3u);
    EXPECT_EQ(g.output(), "H1");
    EXPECT_EQ(g.nodes()[0].label, "L1.XW");
    // Auto-generated names cannot collide with user tensors.
    EXPECT_EQ(g.nodes()[1].out.front(), '%');
    EXPECT_TRUE(g.validate().empty());
}

TEST(WorkloadBuilder, InputIsIdempotent)
{
    WorkloadBuilder b;
    b.input("X");
    b.input("X");
    auto g = b.build(b.relu(b.input("X")));
    EXPECT_EQ(g.inputs().size(), 1u);
}

TEST(WorkloadGraph, ValidateReportsUnboundTensor)
{
    WorkloadNode n;
    n.kind = OpKind::Spmm;
    n.out = "C";
    n.a = "A";
    n.b = "nope";
    WorkloadGraph g({n}, {"A"}, "C");
    EXPECT_NE(g.validate().find("unbound tensor 'nope'"), std::string::npos);
}

TEST(WorkloadGraph, ValidateReportsDuplicateProducer)
{
    WorkloadNode n1;
    n1.kind = OpKind::Elementwise;
    n1.ew = EwKind::Relu;
    n1.out = "C";
    n1.a = "A";
    WorkloadNode n2 = n1;
    WorkloadGraph g({n1, n2}, {"A"}, "C");
    EXPECT_NE(g.validate().find("more than one node"), std::string::npos);
}

TEST(WorkloadGraph, ValidateReportsArityErrors)
{
    WorkloadNode relu2;  // ReLU with two inputs
    relu2.kind = OpKind::Elementwise;
    relu2.ew = EwKind::Relu;
    relu2.out = "C";
    relu2.a = "A";
    relu2.b = "B";
    EXPECT_NE(WorkloadGraph({relu2}, {"A", "B"}, "C").validate().find(
                  "exactly one input"),
              std::string::npos);

    WorkloadNode lonely;  // Spmm without a dense operand
    lonely.kind = OpKind::Spmm;
    lonely.out = "C";
    lonely.a = "A";
    EXPECT_NE(WorkloadGraph({lonely}, {"A"}, "C").validate().find(
                  "needs a second input"),
              std::string::npos);
}

TEST(WorkloadGraph, ValidateReportsMissingOutputAndCycles)
{
    WorkloadNode n;
    n.kind = OpKind::Elementwise;
    n.ew = EwKind::Relu;
    n.out = "C";
    n.a = "A";
    EXPECT_NE(WorkloadGraph({n}, {"A"}, "missing").validate().find(
                  "never produced"),
              std::string::npos);

    // C depends on D depends on C.
    WorkloadNode c;
    c.kind = OpKind::Elementwise;
    c.ew = EwKind::AddScaled;
    c.out = "C";
    c.a = "A";
    c.b = "D";
    WorkloadNode d;
    d.kind = OpKind::Elementwise;
    d.ew = EwKind::Relu;
    d.out = "D";
    d.a = "C";
    const std::string err = WorkloadGraph({c, d}, {"A"}, "C").validate();
    EXPECT_NE(err.find("cycle"), std::string::npos);
    // The error names every node on the cycle so a misauthored graph is
    // debuggable without re-deriving the topological order by hand.
    EXPECT_NE(err.find("'C'"), std::string::npos) << err;
    EXPECT_NE(err.find("'D'"), std::string::npos) << err;
}

TEST(WorkloadGraph, ScheduleHandlesArbitraryNodeOrder)
{
    // Author the chain backwards: relu(C), C = A x B, and a parallel
    // branch; schedule() must still order producers first.
    WorkloadNode relu;
    relu.kind = OpKind::Elementwise;
    relu.ew = EwKind::Relu;
    relu.out = "H";
    relu.a = "C";
    WorkloadNode mm;
    mm.kind = OpKind::Spmm;
    mm.out = "C";
    mm.a = "A";
    mm.b = "B";
    WorkloadNode cat;
    cat.kind = OpKind::Concat;
    cat.out = "Z";
    cat.a = "H";
    cat.b = "C";
    WorkloadGraph g({cat, relu, mm}, {"A", "B"}, "Z");
    EXPECT_TRUE(g.validate().empty());

    std::vector<std::size_t> order = g.schedule();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 2u);  // mm first
    EXPECT_EQ(order[1], 1u);  // then relu
    EXPECT_EQ(order[2], 0u);  // concat last
}

TEST(ReferenceEval, ElementwiseAndConcatSemantics)
{
    DenseMatrix a(2, 2), b(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = -2;
    a.at(1, 0) = 3;
    a.at(1, 1) = -4;
    b.at(0, 0) = 10;
    b.at(0, 1) = 20;
    b.at(1, 0) = 30;
    b.at(1, 1) = 40;

    WorkloadBuilder bld;
    auto add = bld.addScaled(bld.input("a"), bld.input("b"), 0.5, "add");
    auto mean = bld.mean("a", "b", "mean");
    auto rel = bld.relu("a", "rel");
    auto cat = bld.concat(add, mean, "cat");
    auto cat2 = bld.concat(cat, rel, "cat2");

    WorkloadBundle w;
    w.graph = bld.build(cat2);
    w.dense.emplace("a", a);
    w.dense.emplace("b", b);
    DenseMatrix out = referenceEval(w);

    ASSERT_EQ(out.rows(), 2);
    ASSERT_EQ(out.cols(), 6);
    EXPECT_FLOAT_EQ(out.at(0, 0), 6.0f);    // 1 + 0.5*10
    EXPECT_FLOAT_EQ(out.at(1, 1), 16.0f);   // -4 + 0.5*40
    EXPECT_FLOAT_EQ(out.at(0, 2), 5.5f);    // (1+10)/2
    EXPECT_FLOAT_EQ(out.at(1, 3), 18.0f);   // (-4+40)/2
    EXPECT_FLOAT_EQ(out.at(0, 5), 0.0f);    // relu(-2)
    EXPECT_FLOAT_EQ(out.at(1, 4), 3.0f);    // relu(3)
}

TEST(RowNormalized, RowsSumToOne)
{
    auto ds = loadSyntheticByName("cora", 21, 0.05);
    CscMatrix norm = rowNormalized(ds.adjacency);
    ASSERT_EQ(norm.nnz(), ds.adjacency.nnz());

    std::vector<double> rowSum(static_cast<std::size_t>(norm.rows()), 0.0);
    for (std::size_t p = 0; p < norm.val().size(); ++p)
        rowSum[static_cast<std::size_t>(norm.rowId()[p])] += norm.val()[p];
    for (double s : rowSum) {
        if (s != 0.0) {
            EXPECT_NEAR(s, 1.0, 1e-5);
        }
    }
}

TEST(ConfigValidate, DescribesEveryFieldError)
{
    AccelConfig good;
    EXPECT_TRUE(good.validate().empty());
    EXPECT_TRUE(good.validate(/*cycle_accurate_tdq2=*/true).empty());

    AccelConfig c = good;
    c.numPes = 0;
    EXPECT_NE(c.validate().find("numPes"), std::string::npos);
    c = good;
    c.receivePorts = -1;
    EXPECT_NE(c.validate().find("receivePorts"), std::string::npos);
    c = good;
    c.sharingHops = -2;
    EXPECT_NE(c.validate().find("sharingHops"), std::string::npos);
    c = good;
    c.maxCyclesPerRound = 0;
    EXPECT_NE(c.validate().find("maxCyclesPerRound"), std::string::npos);
    c = good;
    c.streamWidth = -1;
    EXPECT_NE(c.validate().find("streamWidth"), std::string::npos);

    // The Omega network constraint only binds the cycle-accurate TDQ-2
    // path (the round-level model sweeps 512/768/1024 freely).
    c = good;
    c.numPes = 48;
    EXPECT_TRUE(c.validate().empty());
    EXPECT_NE(c.validate(true).find("power-of-two"), std::string::npos);
}

TEST(ConfigValidateDeath, MakeConfigSurfacesDescriptiveError)
{
    EXPECT_EXIT(makeConfig(Design::Baseline, 0),
                ::testing::ExitedWithCode(1), "numPes must be positive");
}
