/**
 * @file
 * Unit + property tests for the sparse matrix library: format invariants,
 * conversions round-trip, and all SpMM kernels agree with dense GEMM.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "sparse/convert.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/spmm.hpp"

using namespace awb;

namespace {

/** Random sparse COO with the given density. */
CooMatrix
randomCoo(Rng &rng, Index rows, Index cols, double density)
{
    CooMatrix m(rows, cols);
    for (Index i = 0; i < rows; ++i)
        for (Index j = 0; j < cols; ++j)
            if (rng.nextBool(density))
                m.add(i, j, rng.nextFloat(-1.0f, 1.0f));
    m.canonicalize();
    return m;
}

DenseMatrix
randomDense(Rng &rng, Index rows, Index cols)
{
    DenseMatrix m(rows, cols);
    m.fillUniform(rng, -1.0f, 1.0f);
    return m;
}

} // namespace

TEST(Coo, CanonicalizeMergesDuplicates)
{
    CooMatrix m(3, 3);
    m.add(1, 2, 1.5f);
    m.add(1, 2, 2.5f);
    m.add(0, 0, 1.0f);
    m.canonicalize();
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_EQ(m.entries()[0].row, 0);
    EXPECT_FLOAT_EQ(m.entries()[1].val, 4.0f);
}

TEST(Coo, CanonicalizeDropsCancellation)
{
    CooMatrix m(2, 2);
    m.add(0, 1, 3.0f);
    m.add(0, 1, -3.0f);
    m.canonicalize();
    EXPECT_EQ(m.nnz(), 0);
}

TEST(Coo, DensityComputation)
{
    CooMatrix m(10, 10);
    m.add(0, 0, 1.0f);
    m.add(5, 5, 1.0f);
    EXPECT_DOUBLE_EQ(m.density(), 0.02);
}

TEST(Csc, FromCooValid)
{
    Rng rng(1);
    auto coo = randomCoo(rng, 20, 30, 0.1);
    auto csc = CscMatrix::fromCoo(coo);
    EXPECT_TRUE(csc.valid());
    EXPECT_EQ(csc.nnz(), coo.nnz());
}

TEST(Csc, PaperFigure4Example)
{
    // The 5x5 example of Figure 4 in the paper.
    DenseMatrix d(5, 5);
    d.at(0, 0) = 1; d.at(3, 0) = 3;
    d.at(1, 1) = 6; d.at(4, 1) = 5;
    d.at(0, 2) = 9;
    d.at(1, 3) = 2; d.at(4, 3) = 3;
    d.at(2, 4) = 7;
    auto csc = denseToCsc(d);
    std::vector<Count> expect_ptr = {0, 2, 4, 5, 7, 8};
    std::vector<Index> expect_row = {0, 3, 1, 4, 0, 1, 4, 2};
    std::vector<Value> expect_val = {1, 3, 6, 5, 9, 2, 3, 7};
    EXPECT_EQ(csc.colPtr(), expect_ptr);
    EXPECT_EQ(csc.rowId(), expect_row);
    EXPECT_EQ(csc.val(), expect_val);
}

TEST(Csc, RowNnzMatchesDense)
{
    Rng rng(2);
    auto coo = randomCoo(rng, 15, 15, 0.2);
    auto csc = CscMatrix::fromCoo(coo);
    auto d = cooToDense(coo);
    auto counts = csc.rowNnz();
    for (Index i = 0; i < 15; ++i) {
        Count expect = 0;
        for (Index j = 0; j < 15; ++j)
            if (d.at(i, j) != 0.0f) ++expect;
        EXPECT_EQ(counts[static_cast<std::size_t>(i)], expect);
    }
}

TEST(Csr, FromCooValid)
{
    Rng rng(3);
    auto coo = randomCoo(rng, 25, 18, 0.15);
    auto csr = CsrMatrix::fromCoo(coo);
    EXPECT_TRUE(csr.valid());
    EXPECT_EQ(csr.nnz(), coo.nnz());
}

TEST(Convert, CsrCscRoundTrip)
{
    Rng rng(4);
    auto coo = randomCoo(rng, 12, 17, 0.3);
    auto csr = CsrMatrix::fromCoo(coo);
    auto csc = csrToCsc(csr);
    auto back = cscToCsr(csc);
    EXPECT_EQ(back.rowPtr(), csr.rowPtr());
    EXPECT_EQ(back.colId(), csr.colId());
    EXPECT_EQ(back.val(), csr.val());
}

TEST(Convert, DenseRoundTrip)
{
    Rng rng(5);
    auto coo = randomCoo(rng, 9, 7, 0.4);
    auto d1 = cooToDense(coo);
    auto d2 = cscToDense(denseToCsc(d1));
    auto d3 = csrToDense(denseToCsr(d1));
    EXPECT_DOUBLE_EQ(d1.maxAbsDiff(d2), 0.0);
    EXPECT_DOUBLE_EQ(d1.maxAbsDiff(d3), 0.0);
}

TEST(Dense, ReluClampsNegatives)
{
    DenseMatrix m(2, 2);
    m.at(0, 0) = -1.0f;
    m.at(0, 1) = 2.0f;
    m.relu();
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
}

TEST(Dense, FillSparseDensity)
{
    Rng rng(6);
    DenseMatrix m(200, 200);
    m.fillSparse(rng, 0.1, -1.0f, 1.0f);
    EXPECT_NEAR(m.density(), 0.1, 0.01);
}

/** Property: every SpMM kernel equals dense GEMM on random inputs. */
class SpmmProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpmmProperty, KernelsAgreeWithDenseGemm)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Index m = 5 + rng.nextIndex(40);
    Index n = 5 + rng.nextIndex(40);
    Index k = 1 + rng.nextIndex(20);
    double density = 0.02 + rng.nextDouble() * 0.5;

    auto coo = randomCoo(rng, m, n, density);
    auto a_dense = cooToDense(coo);
    auto b = randomDense(rng, n, k);

    auto golden = multiply(a_dense, b);
    auto via_csc = spmmCsc(CscMatrix::fromCoo(coo), b);
    auto via_csr = spmmCsr(CsrMatrix::fromCoo(coo), b);
    auto via_dense = spmmDenseStored(a_dense, b);

    EXPECT_LT(golden.maxAbsDiff(via_csc), 1e-4);
    EXPECT_LT(golden.maxAbsDiff(via_csr), 1e-4);
    EXPECT_LT(golden.maxAbsDiff(via_dense), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, SpmmProperty,
                         ::testing::Range(0, 20));

TEST(Spmm, MultCountCsc)
{
    Rng rng(7);
    auto coo = randomCoo(rng, 30, 30, 0.1);
    auto csc = CscMatrix::fromCoo(coo);
    DenseMatrix b(30, 4);
    EXPECT_EQ(spmmMultCount(csc, b), csc.nnz() * 4);
}

TEST(MmIo, RoundTrip)
{
    Rng rng(8);
    auto coo = randomCoo(rng, 10, 12, 0.25);
    std::stringstream ss;
    writeMatrixMarket(ss, coo);
    auto back = readMatrixMarket(ss);
    EXPECT_EQ(back.rows(), coo.rows());
    EXPECT_EQ(back.cols(), coo.cols());
    EXPECT_EQ(back.nnz(), coo.nnz());
    EXPECT_LT(cooToDense(back).maxAbsDiff(cooToDense(coo)), 1e-5);
}

TEST(MmIo, ParsesPatternSymmetric)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate pattern symmetric\n"
       << "% comment line\n"
       << "3 3 2\n"
       << "2 1\n"
       << "3 3\n";
    auto m = readMatrixMarket(ss);
    EXPECT_EQ(m.rows(), 3);
    // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
    EXPECT_EQ(m.nnz(), 3);
    auto d = cooToDense(m);
    EXPECT_FLOAT_EQ(d.at(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(d.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(d.at(2, 2), 1.0f);
}
