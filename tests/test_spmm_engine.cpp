/**
 * @file
 * Integration + property tests for the cycle-accurate SPMM engine and the
 * full GCN accelerator: functional exactness against the software golden
 * model across all design points, and the paper's headline behaviours
 * (rebalancing raises utilization and cuts cycles on skewed inputs).
 */

#include <gtest/gtest.h>

#include "accel/gcn_accel.hpp"
#include "accel/spmm_engine.hpp"
#include "common/rng.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"
#include "graph/generator.hpp"
#include "graph/normalize.hpp"
#include "sparse/convert.hpp"
#include "sparse/spmm.hpp"

using namespace awb;

namespace {

CscMatrix
randomSparse(Rng &rng, Index rows, Index cols, double density)
{
    CooMatrix coo(rows, cols);
    for (Index i = 0; i < rows; ++i)
        for (Index j = 0; j < cols; ++j)
            if (rng.nextBool(density))
                coo.add(i, j, rng.nextFloat(-1.0f, 1.0f));
    coo.canonicalize();
    return CscMatrix::fromCoo(coo);
}

DenseMatrix
randomDense(Rng &rng, Index rows, Index cols)
{
    DenseMatrix m(rows, cols);
    m.fillUniform(rng, -1.0f, 1.0f);
    return m;
}

/** Skewed sparse operand: a few very heavy rows (power-law caricature). */
CscMatrix
skewedSparse(Rng &rng, Index rows, Index cols)
{
    CooMatrix coo(rows, cols);
    for (Index i = 0; i < rows; ++i) {
        Count deg = (i < rows / 16 + 1) ? cols / 2 : 2;
        for (Count d = 0; d < deg; ++d)
            coo.add(i, rng.nextIndex(cols), 1.0f);
    }
    coo.canonicalize();
    return CscMatrix::fromCoo(coo);
}

} // namespace

/** Property: the engine is functionally exact for every design point and
 *  both TDQ paths. */
class EngineFunctional
    : public ::testing::TestWithParam<std::tuple<Design, TdqKind, int>>
{};

TEST_P(EngineFunctional, MatchesReferenceSpmm)
{
    auto [design, kind, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) + 100);
    Index m = 32 + rng.nextIndex(64);
    Index n = 32 + rng.nextIndex(64);
    Index k = 1 + rng.nextIndex(8);
    auto a = randomSparse(rng, m, n, 0.05 + rng.nextDouble() * 0.2);
    auto b = randomDense(rng, n, k);

    AccelConfig cfg = makeConfig(design, 8);
    RowPartition part(m, cfg.numPes, cfg.mapPolicy);
    auto [c, stats] = SpmmEngine(cfg).execute(a, b, kind, part);

    auto golden = spmmCsc(a, b);
    EXPECT_LT(golden.maxAbsDiff(c), 1e-4);
    EXPECT_EQ(stats.tasks, a.nnz() * k);
    EXPECT_GT(stats.cycles, 0);
    EXPECT_LE(stats.utilization, 1.0);
    EXPECT_TRUE(part.consistent());
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, EngineFunctional,
    ::testing::Combine(::testing::Values(Design::Baseline, Design::LocalA,
                                         Design::LocalB, Design::RemoteC,
                                         Design::RemoteD, Design::EieLike),
                       ::testing::Values(TdqKind::Tdq1DenseScan,
                                         TdqKind::Tdq2OmegaCsc),
                       ::testing::Values(1, 2)));

TEST(Engine, IdealCyclesLowerBound)
{
    Rng rng(3);
    auto a = randomSparse(rng, 64, 64, 0.1);
    auto b = randomDense(rng, 64, 4);
    AccelConfig cfg = makeConfig(Design::Baseline, 8);
    RowPartition part(64, 8, cfg.mapPolicy);
    SpmmStats stats =
        SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part).stats;
    EXPECT_GE(stats.cycles, stats.idealCycles);
    EXPECT_EQ(stats.syncCycles, stats.cycles - stats.idealCycles);
}

TEST(Engine, LocalSharingImprovesSkewedUtilization)
{
    Rng rng(4);
    auto a = skewedSparse(rng, 128, 128);
    auto b = randomDense(rng, 128, 8);

    SpmmStats base_stats, shared_stats;
    {
        AccelConfig cfg = makeConfig(Design::Baseline, 16);
        RowPartition part(128, 16, cfg.mapPolicy);
        base_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    {
        AccelConfig cfg = makeConfig(Design::LocalB, 16);
        RowPartition part(128, 16, cfg.mapPolicy);
        shared_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    EXPECT_GT(shared_stats.utilization, base_stats.utilization);
    EXPECT_LT(shared_stats.cycles, base_stats.cycles);
}

TEST(Engine, RemoteSwitchingBeatsLocalOnlyOnClusteredRows)
{
    // Clustered heavy rows sit on adjacent PEs; local sharing alone
    // cannot spread them but remote switching can (paper Fig. 10).
    Rng rng(5);
    CooMatrix coo(128, 128);
    for (Index i = 0; i < 128; ++i) {
        Count deg = (i >= 56 && i < 72) ? 48 : 1;  // hot band mid-array
        for (Count d = 0; d < deg; ++d)
            coo.add(i, rng.nextIndex(128), 1.0f);
    }
    coo.canonicalize();
    auto a = CscMatrix::fromCoo(coo);
    auto b = randomDense(rng, 128, 16);

    SpmmStats local_stats, remote_stats;
    {
        AccelConfig cfg = makeConfig(Design::LocalA, 16);
        RowPartition part(128, 16, cfg.mapPolicy);
        local_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    {
        AccelConfig cfg = makeConfig(Design::RemoteC, 16);
        RowPartition part(128, 16, cfg.mapPolicy);
        remote_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    EXPECT_LT(remote_stats.cycles, local_stats.cycles);
    EXPECT_GT(remote_stats.rowsSwitched, 0);
}

TEST(Engine, RemoteSwitchingConvergesAndReusesMap)
{
    Rng rng(6);
    auto a = skewedSparse(rng, 128, 128);
    auto b = randomDense(rng, 128, 32);
    AccelConfig cfg = makeConfig(Design::RemoteD, 16);
    RowPartition part(128, 16, cfg.mapPolicy);
    SpmmStats stats =
        SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part).stats;
    // Auto-tuning must settle well before the 32 rounds are over.
    EXPECT_GE(stats.convergedRound, 0);
    EXPECT_LT(stats.convergedRound, 24);
    // Later rounds should be no slower than the first (tuned map reused).
    ASSERT_GE(stats.roundCycles.size(), 4u);
    EXPECT_LE(stats.roundCycles.back(), stats.roundCycles.front());
}

TEST(Engine, RebalancingShrinksPeakQueueDepth)
{
    // Paper §5.2: balanced workloads need far shallower task queues
    // (Nell: 65128 -> 2675 slots).
    Rng rng(7);
    auto a = skewedSparse(rng, 256, 256);
    auto b = randomDense(rng, 256, 8);

    SpmmStats base_stats, d_stats;
    {
        AccelConfig cfg = makeConfig(Design::Baseline, 16);
        RowPartition part(256, 16, cfg.mapPolicy);
        base_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    {
        AccelConfig cfg = makeConfig(Design::RemoteD, 16);
        RowPartition part(256, 16, cfg.mapPolicy);
        d_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    EXPECT_LT(d_stats.peakQueueDepth, base_stats.peakQueueDepth);
}

TEST(Engine, UniformWorkloadAlreadyBalanced)
{
    // With evenly spread non-zeros, rebalancing should change little
    // (the paper's Reddit case: 92% -> 99%).
    Rng rng(8);
    GraphGenParams p;
    p.nodes = 256;
    p.edges = 8192;
    p.style = GraphStyle::Uniform;
    auto a = CscMatrix::fromCoo(synthesizeAdjacency(rng, p));
    auto b = randomDense(rng, 256, 8);

    SpmmStats base_stats, d_stats;
    {
        AccelConfig cfg = makeConfig(Design::Baseline, 16);
        RowPartition part(256, 16, cfg.mapPolicy);
        base_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    {
        AccelConfig cfg = makeConfig(Design::RemoteD, 16);
        RowPartition part(256, 16, cfg.mapPolicy);
        d_stats =
            SpmmEngine(cfg).execute(a, b, TdqKind::Tdq2OmegaCsc, part)
                .stats;
    }
    EXPECT_GT(base_stats.utilization, 0.6);
    double speedup = static_cast<double>(base_stats.cycles) /
                     static_cast<double>(d_stats.cycles);
    EXPECT_LT(speedup, 1.4);
}

TEST(Pipeline, CombinesRoundTimings)
{
    // Stage 1 rounds: 10 each; stage 2 rounds: 2 each. Pipelined: stage 2
    // hides behind stage 1 -> total = 4*10 + 2 = 42.
    std::vector<Cycle> s1 = {10, 10, 10, 10};
    std::vector<Cycle> s2 = {2, 2, 2, 2};
    EXPECT_EQ(pipelineCycles(s1, s2), 42);
    // Stage 2 dominant: total = 10 + 4*12 = 58.
    std::vector<Cycle> s3 = {12, 12, 12, 12};
    EXPECT_EQ(pipelineCycles(s1, s3), 58);
}

TEST(GcnAccel, FunctionallyExactVsGoldenModel)
{
    auto ds = loadSyntheticByName("cora", 2, 0.03);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 2);
    auto golden = inferGcn(ds, model);

    AccelConfig cfg = makeConfig(Design::RemoteD, 16);
    auto run = runGcn(cfg, ds, model);

    ASSERT_TRUE(run.output.sameShape(golden.output));
    EXPECT_LT(run.output.maxAbsDiff(golden.output), 1e-3);
    ASSERT_EQ(run.layers.size(), 2u);
    EXPECT_GT(run.totalCycles, 0);
    EXPECT_LE(run.totalCycles, run.totalCyclesSerial);
}

TEST(GcnAccel, PipeliningSavesCycles)
{
    auto ds = loadSyntheticByName("citeseer", 3, 0.03);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 3);
    auto run = runGcn(makeConfig(Design::Baseline, 16), ds, model);
    EXPECT_LT(run.totalCycles, run.totalCyclesSerial);
}

TEST(GcnAccel, DesignDFasterThanBaselineOnPowerLawGraph)
{
    auto ds = loadSyntheticByName("cora", 4, 0.08);
    auto model = makeGcnModel(ds.spec.f1, ds.spec.f2, ds.spec.f3, 4);

    auto run_base = runGcn(makeConfig(Design::Baseline, 32), ds, model);
    auto run_d = runGcn(makeConfig(Design::RemoteD, 32), ds, model);

    EXPECT_LT(run_d.totalCycles, run_base.totalCycles);
    EXPECT_GT(run_d.utilization, run_base.utilization);
    // Functional outputs identical across designs.
    EXPECT_LT(run_d.output.maxAbsDiff(run_base.output), 1e-3);
}
