#!/usr/bin/env python3
"""Bench-regression gate: diff freshly generated bench JSON documents
against the baselines tracked in the repository.

The tracked baselines (BENCH_dynamic.json, BENCH_engine.json,
BENCH_memory.json, BENCH_scaleout.json, BENCH_serving.json,
BENCH_spgemm.json) pin the simulator's *model outputs* — cycle counts,
traffic bytes, round counts, convergence, drift curves, half-life
epochs, frontier curves and rebalance verdicts — which are
deterministic functions of the seed and must never drift silently. Host-dependent
measurements (any key containing ``wall_ms`` or ``speedup``, and the
derived ``largest_paired_config`` summary built from them) are reported
as advisory drift only.

Usage:
    check_bench.py BASELINE FRESH [BASELINE FRESH ...]
    check_bench.py --self-test

Exit status is 0 when every model field of every pair is bit-identical,
1 otherwise. ``--self-test`` proves the gate can fail: it perturbs a
deep copy of a synthetic document one field at a time and asserts the
comparison rejects every cycle/traffic perturbation while accepting
wall-clock drift.
"""

import copy
import json
import sys

# Keys whose values are host/timing measurements, not model outputs.
ADVISORY_SUBSTRINGS = ("wall_ms", "speedup", "latency_saved")
# Subtrees derived from wall-clock measurements (engine summary).
ADVISORY_KEYS = ("largest_paired_config",)


def is_advisory(key):
    if key in ADVISORY_KEYS:
        return True
    return any(s in key for s in ADVISORY_SUBSTRINGS)


def diff(baseline, fresh, path, blocking, advisory):
    """Recursively collect mismatches between two parsed JSON values."""
    if isinstance(baseline, dict) and isinstance(fresh, dict):
        for key in sorted(set(baseline) | set(fresh)):
            sub = f"{path}.{key}" if path else key
            sink = advisory if is_advisory(key) else blocking
            if key not in baseline:
                sink.append(f"{sub}: missing from baseline")
            elif key not in fresh:
                sink.append(f"{sub}: missing from fresh output")
            elif is_advisory(key):
                if baseline[key] != fresh[key]:
                    advisory.append(
                        f"{sub}: {baseline[key]!r} -> {fresh[key]!r}")
            else:
                diff(baseline[key], fresh[key], sub, blocking, advisory)
        return
    if isinstance(baseline, list) and isinstance(fresh, list):
        if len(baseline) != len(fresh):
            blocking.append(
                f"{path}: length {len(baseline)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            diff(b, f, f"{path}[{i}]", blocking, advisory)
        return
    if baseline != fresh:
        blocking.append(f"{path}: {baseline!r} -> {fresh!r}")


def collect_wall_ms(baseline, fresh, path, pairs):
    """Collect paired numeric wall_ms measurements from both documents."""
    if isinstance(baseline, dict) and isinstance(fresh, dict):
        for key in sorted(set(baseline) & set(fresh)):
            sub = f"{path}.{key}" if path else key
            b, f = baseline[key], fresh[key]
            if ("wall_ms" in key and isinstance(b, (int, float))
                    and isinstance(f, (int, float))):
                pairs.append((sub, float(b), float(f)))
            else:
                collect_wall_ms(b, f, sub, pairs)
    elif isinstance(baseline, list) and isinstance(fresh, list):
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            collect_wall_ms(b, f, f"{path}[{i}]", pairs)


def trend_summary(baseline, fresh):
    """Advisory wall-clock trend lines: paired totals plus every point
    that moved by 5% or more. Purely informational — never blocks."""
    pairs = []
    collect_wall_ms(baseline, fresh, "", pairs)
    if not pairs:
        return []
    total_old = sum(p[1] for p in pairs)
    total_new = sum(p[2] for p in pairs)
    ratio = total_old / total_new if total_new > 0 else 0.0
    lines = [
        f"wall_ms total {total_old:.1f} -> {total_new:.1f} ms over "
        f"{len(pairs)} paired measurement(s)"
        + (f" ({ratio:.2f}x)" if ratio else "")
    ]
    for sub, old, new in pairs:
        if old <= 0 or new <= 0:
            continue
        r = old / new
        if r >= 1.05:
            lines.append(
                f"  faster {r:.2f}x {sub}: {old:.1f} -> {new:.1f} ms")
        elif r <= 0.95:
            lines.append(
                f"  slower {1 / r:.2f}x {sub}: {old:.1f} -> {new:.1f} ms")
    return lines


def compare_files(baseline_path, fresh_path):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    blocking, advisory = [], []
    diff(baseline, fresh, "", blocking, advisory)
    label = f"{baseline_path} vs {fresh_path}"
    for line in advisory:
        print(f"ADVISORY {label}: {line}")
    for line in trend_summary(baseline, fresh):
        print(f"TREND {label}: {line}")
    for line in blocking:
        print(f"FAIL {label}: {line}")
    if not blocking:
        extra = f" ({len(advisory)} advisory drift(s))" if advisory else ""
        print(f"OK {label}: model fields bit-identical{extra}")
    return not blocking


def self_test():
    """Prove the gate fails on perturbed model fields."""
    doc = {
        "schema": "awbsim-bench-engine-v1",
        "seed": 1,
        "points": [
            {
                "dataset": "cora",
                "event": {"cycles": 36864, "wall_ms": 361.66},
                "batched": {"cycles": 36864, "wall_ms": 19.97},
                "speedup": 18.1,
                "identical": True,
                "traffic": {"halo_bytes": 0, "bytes_total": 123},
            }
        ],
        "summary": {"all_identical": True,
                    "largest_paired_config": {"speedup": 5.4}},
    }

    def verdict(fresh):
        blocking, advisory = [], []
        diff(doc, fresh, "", blocking, advisory)
        return bool(blocking), bool(advisory)

    failures = []

    bad, _ = verdict(copy.deepcopy(doc))
    if bad:
        failures.append("identical documents flagged as regression")

    p = copy.deepcopy(doc)
    p["points"][0]["event"]["cycles"] += 1
    bad, _ = verdict(p)
    if not bad:
        failures.append("perturbed cycles not caught")

    p = copy.deepcopy(doc)
    p["points"][0]["traffic"]["halo_bytes"] = 7
    bad, _ = verdict(p)
    if not bad:
        failures.append("perturbed halo_bytes not caught")

    p = copy.deepcopy(doc)
    p["points"][0]["identical"] = False
    bad, _ = verdict(p)
    if not bad:
        failures.append("flipped identical flag not caught")

    p = copy.deepcopy(doc)
    del p["points"][0]["batched"]
    bad, _ = verdict(p)
    if not bad:
        failures.append("missing subtree not caught")

    p = copy.deepcopy(doc)
    p["points"][0]["event"]["wall_ms"] = 9999.0
    p["points"][0]["speedup"] = 0.001
    p["summary"]["largest_paired_config"]["speedup"] = 77.0
    bad, drift = verdict(p)
    if bad:
        failures.append("wall-clock drift treated as regression")
    if not drift:
        failures.append("wall-clock drift not reported as advisory")

    # awbsim-bench-spgemm-v1: frontier curves, verdicts and the new
    # traffic classes are model fields (blocking); wall_ms is advisory.
    spgemm = {
        "schema": "awbsim-bench-spgemm-v1",
        "dataset": "cora",
        "points": [
            {
                "kernel": "bfs",
                "policy": "remote-d",
                "cycles": 435,
                "frontier": [1, 9, 110],
                "iter_cycles": [7, 12, 53],
                "b_row_bytes": 1000,
                "output_index_bytes": 500,
                "verdict": "helps",
                "wall_ms": 27.3,
            }
        ],
        "summary": {
            "deterministic": True,
            "engines_identical": True,
            "verdicts": {"bfs": {"remote-d": "helps"}},
        },
    }

    def spgemm_verdict(fresh):
        blocking, advisory = [], []
        diff(spgemm, fresh, "", blocking, advisory)
        return bool(blocking), bool(advisory)

    bad, _ = spgemm_verdict(copy.deepcopy(spgemm))
    if bad:
        failures.append("identical spgemm documents flagged")

    p = copy.deepcopy(spgemm)
    p["points"][0]["frontier"][1] = 10
    bad, _ = spgemm_verdict(p)
    if not bad:
        failures.append("perturbed spgemm frontier curve not caught")

    p = copy.deepcopy(spgemm)
    p["points"][0]["b_row_bytes"] += 4
    bad, _ = spgemm_verdict(p)
    if not bad:
        failures.append("perturbed spgemm b_row_bytes not caught")

    p = copy.deepcopy(spgemm)
    p["points"][0]["verdict"] = "hurts"
    p["summary"]["verdicts"]["bfs"]["remote-d"] = "hurts"
    bad, _ = spgemm_verdict(p)
    if not bad:
        failures.append("flipped spgemm verdict not caught")

    p = copy.deepcopy(spgemm)
    p["summary"]["deterministic"] = False
    bad, _ = spgemm_verdict(p)
    if not bad:
        failures.append("flipped spgemm determinism gate not caught")

    p = copy.deepcopy(spgemm)
    p["points"][0]["wall_ms"] = 1e6
    bad, drift = spgemm_verdict(p)
    if bad:
        failures.append("spgemm wall-clock drift treated as regression")
    if not drift:
        failures.append("spgemm wall-clock drift not advisory")

    # awbsim-bench-dynamic-v1: drift curves, half-life epochs and the
    # four streaming gates are model fields (blocking); wall_ms stays
    # advisory.
    dynamic = {
        "schema": "awbsim-bench-dynamic-v1",
        "pes": 256,
        "seed": 1,
        "points": [
            {
                "dataset": "cora",
                "policy": "work-steal",
                "cycles": 16000,
                "rows_moved": 0,
                "half_life_epochs": 5,
                "drift": [0.01, 0.05, 0.12],
                "epoch_cycles": [1600, 1610, 1700],
                "fresh_cycles": [1590, 1530, 1510],
                "wall_ms": 3210.5,
            }
        ],
        "summary": {
            "deterministic": True,
            "engines_identical": True,
            "rebuild_identical": True,
            "trajectory_ok": True,
            "half_life": {"cora": {"work-steal": 5}},
        },
    }

    def dynamic_verdict(fresh):
        blocking, advisory = [], []
        diff(dynamic, fresh, "", blocking, advisory)
        return bool(blocking), bool(advisory)

    bad, _ = dynamic_verdict(copy.deepcopy(dynamic))
    if bad:
        failures.append("identical dynamic documents flagged")

    p = copy.deepcopy(dynamic)
    p["points"][0]["half_life_epochs"] = -1
    p["summary"]["half_life"]["cora"]["work-steal"] = -1
    bad, _ = dynamic_verdict(p)
    if not bad:
        failures.append("perturbed half-life not caught")

    p = copy.deepcopy(dynamic)
    p["points"][0]["drift"][2] = 0.09
    bad, _ = dynamic_verdict(p)
    if not bad:
        failures.append("perturbed drift curve not caught")

    p = copy.deepcopy(dynamic)
    p["points"][0]["fresh_cycles"][1] += 1
    bad, _ = dynamic_verdict(p)
    if not bad:
        failures.append("perturbed fresh-cycle curve not caught")

    p = copy.deepcopy(dynamic)
    p["summary"]["rebuild_identical"] = False
    bad, _ = dynamic_verdict(p)
    if not bad:
        failures.append("flipped rebuild-identity gate not caught")

    p = copy.deepcopy(dynamic)
    p["points"][0]["wall_ms"] = 1e6
    bad, drift = dynamic_verdict(p)
    if bad:
        failures.append("dynamic wall-clock drift treated as regression")
    if not drift:
        failures.append("dynamic wall-clock drift not advisory")

    # Wall-clock trend summary: totals and per-point direction are
    # reported, and a wall-clock-only change stays non-blocking.
    p = copy.deepcopy(doc)
    p["points"][0]["event"]["wall_ms"] = 180.0   # 361.66 -> 180: faster
    p["points"][0]["batched"]["wall_ms"] = 40.0  # 19.97 -> 40: slower
    lines = trend_summary(doc, p)
    if not lines or "wall_ms total" not in lines[0]:
        failures.append("trend summary missing its total line")
    if not any(line.lstrip().startswith("faster") for line in lines):
        failures.append("trend summary missed the faster point")
    if not any(line.lstrip().startswith("slower") for line in lines):
        failures.append("trend summary missed the slower point")
    bad, _ = verdict(p)
    if bad:
        failures.append("wall-clock trend drift treated as regression")
    if trend_summary(doc, copy.deepcopy(doc)) and any(
            line.lstrip().startswith(("faster", "slower"))
            for line in trend_summary(doc, copy.deepcopy(doc))):
        failures.append("identical documents produced trend movement")

    for f in failures:
        print(f"SELF-TEST FAIL: {f}")
    if not failures:
        print("SELF-TEST OK: gate rejects model drift, tolerates "
              "wall-clock drift")
    return not failures


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return 0 if self_test() else 1
    args = argv[1:]
    if not args or len(args) % 2 != 0:
        print(__doc__.strip())
        return 2
    ok = True
    for baseline, fresh in zip(args[0::2], args[1::2]):
        if not compare_files(baseline, fresh):
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
