#!/usr/bin/env python3
"""Documentation hygiene checker.

Verifies, across every git-tracked file:

1. `DESIGN.md §N` references (the form source comments use) point at a
   real `§N` section heading in DESIGN.md;
2. relative markdown links in *.md files point at files that exist;
3. `#anchor` fragments in those links match a heading of the target
   markdown file (GitHub heading-slug rules).

Run from the repository root (CI docs job and the `docs_check` ctest do).
Exits non-zero listing every dangling reference found.
"""

import re
import subprocess
import sys
from pathlib import Path

TEXT_SUFFIXES = {".md", ".hpp", ".cpp", ".py", ".yml", ".yaml", ".txt",
                 ".cmake", ".sh"}
SECTION_REF = re.compile(r"DESIGN\.md\s*§(\d+)")
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)


def tracked_files():
    out = subprocess.run(["git", "ls-files"], check=True,
                         capture_output=True, text=True).stdout
    return [Path(p) for p in out.splitlines()
            if Path(p).suffix in TEXT_SUFFIXES or Path(p).name == "CMakeLists.txt"]


def github_slug(heading, seen):
    """GitHub's heading→anchor rule: lowercase, drop everything but
    alphanumerics/spaces/hyphens/underscores, spaces to hyphens,
    -N suffixes for duplicates."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    # GitHub treats non-ASCII word characters as keepable, but our docs
    # are ASCII once § and punctuation are stripped.
    slug = re.sub(r"[^a-z0-9\-_]", "", slug)
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def anchors_of(md_path, cache={}):
    if md_path not in cache:
        seen = {}
        text = md_path.read_text(encoding="utf-8")
        # Strip fenced code blocks so commented-out headings don't count.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        cache[md_path] = {github_slug(m.group(2), seen)
                          for m in HEADING.finditer(text)}
    return cache[md_path]


def design_sections():
    design = Path("DESIGN.md")
    if not design.is_file():
        return design, set()
    secs = set()
    for m in HEADING.finditer(design.read_text(encoding="utf-8")):
        sm = re.match(r"§(\d+)\b", m.group(2))
        if sm:
            secs.add(sm.group(1))
    return design, secs


def main():
    errors = []
    design, sections = design_sections()

    for path in tracked_files():
        try:
            text = path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, FileNotFoundError):
            continue

        # 1. DESIGN.md §N references, in any tracked file.
        for m in SECTION_REF.finditer(text):
            if not design.is_file():
                errors.append(f"{path}: cites DESIGN.md §{m.group(1)} "
                              "but DESIGN.md does not exist")
            elif m.group(1) not in sections:
                errors.append(f"{path}: cites DESIGN.md §{m.group(1)} "
                              f"but DESIGN.md has no §{m.group(1)} heading")

        # 2./3. Markdown links in markdown files.
        if path.suffix != ".md":
            continue
        body = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for m in MD_LINK.finditer(body):
            target = m.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            if target.startswith("#"):
                if target[1:] not in anchors_of(path):
                    errors.append(f"{path}: dangling anchor '{target}'")
                continue
            file_part, _, anchor = target.partition("#")
            dest = (path.parent / file_part).resolve()
            if not dest.exists():
                errors.append(f"{path}: broken link '{target}' "
                              f"(no such file {file_part})")
                continue
            try:
                dest.relative_to(Path.cwd().resolve())
            except ValueError:
                errors.append(f"{path}: link '{target}' escapes the "
                              "repository (invalid on GitHub)")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in anchors_of(dest):
                    errors.append(f"{path}: dangling anchor '{target}'")

    if errors:
        print(f"docs check: {len(errors)} problem(s)")
        for e in errors:
            print("  " + e)
        return 1
    print("docs check: all markdown links, anchors and DESIGN.md section "
          "references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
